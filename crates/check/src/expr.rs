//! Best-effort expression parser over [`crate::lex`] tokens.
//!
//! `check::units` needs real expression *trees* — which operands feed which
//! `+`, where a `1e-12` multiplies, which value lands in which struct field —
//! not the flat token runs `check::callgraph` extracts. This module is a
//! Pratt parser over the lexer's tokens that recovers exactly the statement
//! and expression subset the PipeLayer model code is written in:
//! let-bindings, arithmetic/comparison chains, method and free/assoc calls,
//! numeric casts, field access, struct literals, macro invocations, and the
//! block/`if`/`match` scaffolding around them.
//!
//! Design rules, in priority order:
//!
//! 1. **Never panic, always progress** — like the lexer, the parser is run
//!    over arbitrary token soup in a fuzz test. Anything unparseable becomes
//!    an [`ExprKind::Opaque`] node (whose children, if any, are still
//!    well-formed statements), and the cursor always advances.
//! 2. **Byte-span fidelity** — every node carries the byte [`Span`] of the
//!    tokens it covers, so diagnostics can point at the exact source slice.
//! 3. **Honest ignorance** — constructs outside the subset (closures,
//!    tuples, ranges, `match` patterns) parse to `Opaque`, never to a
//!    wrong-but-plausible tree. The units pass maps `Opaque` to "unknown
//!    unit", which can only *suppress* findings, not invent them.

use crate::lex::{Tok, TokKind};

/// Byte range (plus 1-based start line) of one parsed node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
    pub line: usize,
}

/// One parsed expression with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

/// One struct-literal field: `name: value`, or shorthand `name` (no value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldInit {
    pub name: String,
    pub value: Option<Expr>,
    pub span: Span,
}

/// The expression grammar subset (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Numeric literal, raw source text (`29.31`, `1e-12`, `0xFF_u32`).
    Num(String),
    /// String literal, raw source text including quotes/escapes.
    Str(String),
    /// Variable or path reference: `x`, `f64::INFINITY` (segments).
    Path(Vec<String>),
    /// `base.name` (also tuple indices: `t.0`).
    Field { base: Box<Expr>, name: String },
    /// `base.name(args)`.
    MethodCall {
        base: Box<Expr>,
        name: String,
        args: Vec<Expr>,
    },
    /// `path(args)` or `Type::assoc(args)`.
    Call { path: Vec<String>, args: Vec<Expr> },
    /// `name!(args)` — args parsed best-effort as comma-separated exprs.
    Macro { name: String, args: Vec<Expr> },
    /// Prefix `-`, `!`, `&`, `*`.
    Unary { op: char, operand: Box<Expr> },
    /// Infix operator, both operands parsed.
    Binary {
        op: String,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `operand as ty`.
    Cast { operand: Box<Expr>, ty: String },
    /// `base[index]`.
    Index { base: Box<Expr>, index: Box<Expr> },
    /// `Path { field: value, .. }`.
    StructLit {
        path: Vec<String>,
        fields: Vec<FieldInit>,
    },
    /// `{ stmts }` — value is the tail statement's, if any.
    Block(Vec<Stmt>),
    /// Anything outside the subset. Child statements (e.g. the arms of a
    /// `match`, the body of a closure) are still parsed and walkable.
    Opaque(Vec<Stmt>),
}

/// One parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `let name [: ty] = init;` — `name` is empty for non-identifier
    /// patterns (tuples, destructuring).
    Let {
        name: String,
        init: Option<Expr>,
        span: Span,
    },
    /// Expression statement (`;`-terminated or block-like).
    Expr(Expr),
    /// `return expr;` / bare `return`.
    Ret(Option<Expr>, Span),
    /// Final expression of a block without `;` — the block's value.
    Tail(Expr),
}

impl Expr {
    fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Depth-first walk over this expression and every nested expression,
    /// including those inside `Opaque`/`Block` child statements.
    pub fn walk<F: FnMut(&Expr)>(&self, f: &mut F) {
        f(self);
        match &self.kind {
            ExprKind::Num(_) | ExprKind::Str(_) | ExprKind::Path(_) => {}
            ExprKind::Field { base, .. } => base.walk(f),
            ExprKind::MethodCall { base, args, .. } => {
                base.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Call { args, .. } | ExprKind::Macro { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Unary { operand, .. } => operand.walk(f),
            ExprKind::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            ExprKind::Cast { operand, .. } => operand.walk(f),
            ExprKind::Index { base, index } => {
                base.walk(f);
                index.walk(f);
            }
            ExprKind::StructLit { fields, .. } => {
                for fi in fields {
                    if let Some(v) = &fi.value {
                        v.walk(f);
                    }
                }
            }
            ExprKind::Block(stmts) | ExprKind::Opaque(stmts) => {
                for s in stmts {
                    s.walk(f);
                }
            }
        }
    }
}

impl Stmt {
    /// Depth-first walk over every expression in this statement.
    pub fn walk<F: FnMut(&Expr)>(&self, f: &mut F) {
        match self {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    e.walk(f);
                }
            }
            Stmt::Expr(e) | Stmt::Tail(e) => e.walk(f),
            Stmt::Ret(e, _) => {
                if let Some(e) = e {
                    e.walk(f);
                }
            }
        }
    }
}

/// Parses the token range `[lo, hi)` of `toks` (a function body between its
/// braces) into statements. Never panics; see module docs.
pub fn parse_body(src: &str, toks: &[Tok], lo: usize, hi: usize) -> Vec<Stmt> {
    let hi = hi.min(toks.len());
    let lo = lo.min(hi);
    let mut p = Parser {
        src,
        toks,
        i: lo,
        hi,
        depth: 0,
    };
    p.parse_stmts(None)
}

/// Recursion ceiling: past this, subexpressions collapse to `Opaque`.
const MAX_DEPTH: u32 = 64;

/// Infix operators with (left, right) binding powers. Longest first so the
/// adjacency-joined lookup is greedy. `=`-family is right-associative.
const BIN_OPS: &[(&str, u8, u8)] = &[
    ("<<=", 2, 1),
    (">>=", 2, 1),
    ("..=", 7, 8),
    ("+=", 2, 1),
    ("-=", 2, 1),
    ("*=", 2, 1),
    ("/=", 2, 1),
    ("%=", 2, 1),
    ("&=", 2, 1),
    ("|=", 2, 1),
    ("^=", 2, 1),
    ("==", 13, 14),
    ("!=", 13, 14),
    ("<=", 13, 14),
    (">=", 13, 14),
    ("<<", 21, 22),
    (">>", 21, 22),
    ("&&", 11, 12),
    ("||", 9, 10),
    ("..", 7, 8),
    ("*", 25, 26),
    ("/", 25, 26),
    ("%", 25, 26),
    ("+", 23, 24),
    ("-", 23, 24),
    ("<", 13, 14),
    (">", 13, 14),
    ("&", 19, 20),
    ("^", 17, 18),
    ("|", 15, 16),
    ("=", 2, 1),
];

struct Parser<'a> {
    src: &'a str,
    toks: &'a [Tok],
    i: usize,
    hi: usize,
    depth: u32,
}

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Tok> {
        let k = self.i.checked_add(ahead)?;
        if k < self.hi {
            self.toks.get(k)
        } else {
            None
        }
    }

    fn text(&self, t: &Tok) -> &'a str {
        t.text(self.src)
    }

    fn peek_text(&self, ahead: usize) -> &'a str {
        self.peek(ahead).map(|t| self.text(t)).unwrap_or("")
    }

    fn is_punct(&self, ahead: usize, s: &str) -> bool {
        self.peek(ahead)
            .is_some_and(|t| t.kind == TokKind::Punct && self.text(t) == s)
    }

    fn is_ident(&self, ahead: usize, s: &str) -> bool {
        self.peek(ahead)
            .is_some_and(|t| t.kind == TokKind::Ident && self.text(t) == s)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.peek(0)?;
        self.i += 1;
        Some(t)
    }

    /// Span of the token about to be consumed (or an empty end-span).
    fn here(&self) -> Span {
        match self.peek(0) {
            Some(t) => Span {
                start: t.start,
                end: t.end,
                line: t.line,
            },
            None => {
                let end = self
                    .toks
                    .get(self.hi.wrapping_sub(1).min(self.toks.len().wrapping_sub(1)))
                    .map(|t| t.end)
                    .unwrap_or(0);
                Span {
                    start: end,
                    end,
                    line: 0,
                }
            }
        }
    }

    /// Span from `from` through the last consumed token.
    fn span_from(&self, from: Span) -> Span {
        let end = self
            .i
            .checked_sub(1)
            .and_then(|k| self.toks.get(k))
            .map(|t| t.end)
            .unwrap_or(from.end);
        Span {
            start: from.start,
            end: end.max(from.start),
            line: from.line,
        }
    }

    /// `::` is two adjacent `:` punct tokens.
    fn is_path_sep(&self, ahead: usize) -> bool {
        match (self.peek(ahead), self.peek(ahead + 1)) {
            (Some(a), Some(b)) => {
                a.kind == TokKind::Punct
                    && b.kind == TokKind::Punct
                    && self.text(a) == ":"
                    && self.text(b) == ":"
                    && a.end == b.start
            }
            _ => false,
        }
    }

    /// The longest [`BIN_OPS`] operator starting at the cursor, built from
    /// byte-adjacent punct tokens. Returns `(op, token_count, l_bp, r_bp)`.
    fn infix_op(&self) -> Option<(&'static str, usize, u8, u8)> {
        let first = self.peek(0)?;
        if first.kind != TokKind::Punct {
            return None;
        }
        let mut joined = String::new();
        let mut end = first.start;
        let mut lens: Vec<usize> = Vec::new();
        for ahead in 0..3 {
            match self.peek(ahead) {
                Some(t) if t.kind == TokKind::Punct && t.start == end => {
                    joined.push_str(self.text(t));
                    end = t.end;
                    lens.push(joined.len());
                }
                _ => break,
            }
        }
        // `a :: b` must stay a path, `=>` an arm arrow, `->` a return arrow.
        for &(op, l, r) in BIN_OPS {
            if let Some(ntoks) = lens.iter().position(|&len| joined[..len] == *op) {
                // Reject when a longer non-operator sequence matches first
                // (`=>`/`->`): the joined prefix equality above already
                // guarantees exact token coverage.
                if op == "=" && joined.starts_with("=>") {
                    return None;
                }
                if op == "-" && joined.starts_with("->") {
                    return None;
                }
                if op == "<" && joined.starts_with("<-") {
                    return None;
                }
                return Some((op, ntoks + 1, l, r));
            }
        }
        None
    }

    /// Consumes tokens through balanced `(`/`[`/`{` until `stop` at depth 0.
    /// Also stops (without consuming) at `;` or a closing delimiter that
    /// would unbalance the region. Returns whether `stop` was consumed.
    fn skip_until(&mut self, stop: &[&str]) -> bool {
        let mut depth: i64 = 0;
        while let Some(t) = self.peek(0) {
            let s = self.text(t);
            if t.kind == TokKind::Punct {
                match s {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            return false;
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => return false,
                    _ => {}
                }
                if depth == 0 && stop.contains(&s) {
                    self.i += 1;
                    return true;
                }
            } else if t.kind == TokKind::Ident && depth == 0 && stop.contains(&s) {
                self.i += 1;
                return true;
            }
            self.i += 1;
        }
        false
    }

    /// Consumes a balanced group whose opener was already consumed.
    fn skip_balanced(&mut self, open: &str) {
        let close = match open {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return,
        };
        let mut depth: i64 = 1;
        while let Some(t) = self.bump() {
            if t.kind != TokKind::Punct {
                continue;
            }
            let s = self.text(t);
            if s == open {
                depth += 1;
            } else if s == close {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Statements until `}` (when `closer` is set) or end of range.
    fn parse_stmts(&mut self, closer: Option<&str>) -> Vec<Stmt> {
        let mut out = Vec::new();
        while self.i < self.hi {
            if let Some(c) = closer {
                if self.is_punct(0, c) {
                    self.i += 1;
                    return out;
                }
            }
            // A stray closer without an open block: stop (outer caller's).
            if closer.is_none() && (self.is_punct(0, "}")) {
                self.i += 1;
                continue;
            }
            let before = self.i;
            if self.is_punct(0, ";") {
                self.i += 1;
                continue;
            }
            if self.is_punct(0, "#") {
                // Statement attribute `#[...]`.
                self.i += 1;
                if self.is_punct(0, "[") {
                    self.i += 1;
                    self.skip_balanced("[");
                }
                continue;
            }
            if self.is_ident(0, "let") {
                out.push(self.parse_let());
            } else if self.is_ident(0, "return") {
                let start = self.here();
                self.i += 1;
                let e = if self.i >= self.hi || self.is_punct(0, ";") || self.is_punct(0, "}") {
                    None
                } else {
                    Some(self.parse_expr(0, true))
                };
                out.push(Stmt::Ret(e, self.span_from(start)));
            } else if self.is_ident(0, "fn")
                || self.is_ident(0, "struct")
                || self.is_ident(0, "impl")
                || self.is_ident(0, "use")
                || self.is_ident(0, "mod")
                || self.is_ident(0, "const")
                || self.is_ident(0, "static")
            {
                // Nested items: skip the header, then the body/terminator.
                let start = self.here();
                self.i += 1;
                self.skip_until(&["{", ";"]);
                if self
                    .i
                    .checked_sub(1)
                    .and_then(|k| self.toks.get(k))
                    .is_some_and(|t| self.text(t) == "{")
                {
                    self.skip_balanced("{");
                }
                out.push(Stmt::Expr(Expr::new(
                    ExprKind::Opaque(Vec::new()),
                    self.span_from(start),
                )));
            } else {
                let e = self.parse_expr(0, true);
                if self.is_punct(0, ";") {
                    self.i += 1;
                    out.push(Stmt::Expr(e));
                } else if self.i >= self.hi || closer.is_some_and(|c| self.is_punct(0, c)) {
                    let tail_close = closer.is_some() && self.is_punct(0, closer.unwrap_or("}"));
                    out.push(Stmt::Tail(e));
                    if tail_close {
                        self.i += 1;
                        return out;
                    }
                } else {
                    // Block-like statement (`if …{}` with no `;`) or soup.
                    out.push(Stmt::Expr(e));
                }
            }
            if self.i == before {
                // Guaranteed progress on anything unhandled.
                self.i += 1;
            }
        }
        out
    }

    fn parse_let(&mut self) -> Stmt {
        let start = self.here();
        self.i += 1; // let
        if self.is_ident(0, "mut") {
            self.i += 1;
        }
        let name = match self.peek(0) {
            Some(t) if t.kind == TokKind::Ident => {
                let n = self.text(t).to_string();
                self.i += 1;
                n
            }
            _ => {
                // Tuple / struct pattern: give up on the name, find `=`/`;`.
                String::new()
            }
        };
        // Optional `: Type` then `= init`. Type tokens may contain `<>`.
        if !name.is_empty() && self.is_punct(0, ":") && !self.is_path_sep(0) {
            self.i += 1;
            self.skip_type();
        } else if name.is_empty() {
            self.skip_until(&["="]);
            // `skip_until` consumed `=` if found; step back so the shared
            // init path below sees it.
            if self
                .i
                .checked_sub(1)
                .and_then(|k| self.toks.get(k))
                .is_some_and(|t| self.text(t) == "=")
            {
                self.i -= 1;
            }
        }
        let init = if self.is_punct(0, "=") && !self.is_punct(1, "=") {
            self.i += 1;
            Some(self.parse_expr(0, true))
        } else {
            None
        };
        // let-else: parse the diverging block so its exprs are still seen.
        if self.is_ident(0, "else") {
            self.i += 1;
            if self.is_punct(0, "{") {
                self.i += 1;
                let _ = self.parse_stmts(Some("}"));
            }
        }
        if self.is_punct(0, ";") {
            self.i += 1;
        }
        Stmt::Let {
            name,
            init,
            span: self.span_from(start),
        }
    }

    /// Skips a type position: balanced `<>`/`()`/`[]`, stopping before `=`,
    /// `;`, or an unbalanced closer. `->` arrows inside fn types pass.
    fn skip_type(&mut self) {
        let mut angle: i64 = 0;
        let mut paren: i64 = 0;
        while let Some(t) = self.peek(0) {
            let s = self.text(t);
            if t.kind == TokKind::Punct {
                match s {
                    "<" => angle += 1,
                    ">" => {
                        // Part of `->`? The previous token is an adjacent `-`.
                        let arrow = self
                            .i
                            .checked_sub(1)
                            .and_then(|k| self.toks.get(k))
                            .is_some_and(|p| {
                                p.kind == TokKind::Punct && self.text(p) == "-" && p.end == t.start
                            });
                        if !arrow {
                            if angle == 0 {
                                return;
                            }
                            angle -= 1;
                        }
                    }
                    "(" | "[" => paren += 1,
                    ")" | "]" => {
                        if paren == 0 {
                            return;
                        }
                        paren -= 1;
                    }
                    "=" | ";" if angle == 0 && paren == 0 => return,
                    "{" | "}" if angle == 0 && paren == 0 => return,
                    _ => {}
                }
            } else if t.kind == TokKind::Ident && s == "else" && angle == 0 && paren == 0 {
                return;
            }
            self.i += 1;
        }
    }

    /// Pratt loop. `struct_ok` gates `Path { … }` struct literals (false in
    /// `if`/`while`/`match`-scrutinee positions, as in real Rust).
    fn parse_expr(&mut self, min_bp: u8, struct_ok: bool) -> Expr {
        if self.depth >= MAX_DEPTH {
            let start = self.here();
            self.skip_until(&[";"]);
            return Expr::new(ExprKind::Opaque(Vec::new()), self.span_from(start));
        }
        self.depth += 1;
        let mut lhs = self.parse_prefix(struct_ok);
        loop {
            // Postfix: `.field`, `.method()`, `?`, `[index]`, `(call)`, `as`.
            if self.is_punct(0, "?") {
                self.i += 1;
                continue;
            }
            if self.is_punct(0, ".") && !self.is_punct(1, ".") {
                lhs = self.parse_postfix_dot(lhs);
                continue;
            }
            if self.is_punct(0, "[") {
                let start = lhs.span;
                self.i += 1;
                let index = self.parse_expr(0, true);
                if self.is_punct(0, "]") {
                    self.i += 1;
                } else {
                    self.skip_until(&["]"]);
                }
                lhs = Expr::new(
                    ExprKind::Index {
                        base: Box::new(lhs),
                        index: Box::new(index),
                    },
                    self.span_from(start),
                );
                continue;
            }
            if self.is_punct(0, "(") && !matches!(lhs.kind, ExprKind::Opaque(_)) {
                // Call of a non-path expression (closure in a variable, …).
                let start = lhs.span;
                self.i += 1;
                let args = self.parse_args(")");
                let mut children: Vec<Stmt> = vec![Stmt::Expr(lhs)];
                children.extend(args.into_iter().map(Stmt::Expr));
                lhs = Expr::new(ExprKind::Opaque(children), self.span_from(start));
                continue;
            }
            if self.is_ident(0, "as") {
                let start = lhs.span;
                self.i += 1;
                let ty = match self.peek(0) {
                    Some(t) if t.kind == TokKind::Ident => {
                        let ty = self.text(t).to_string();
                        self.i += 1;
                        ty
                    }
                    _ => String::new(),
                };
                lhs = Expr::new(
                    ExprKind::Cast {
                        operand: Box::new(lhs),
                        ty,
                    },
                    self.span_from(start),
                );
                continue;
            }
            let Some((op, ntoks, l_bp, r_bp)) = self.infix_op() else {
                break;
            };
            if l_bp < min_bp {
                break;
            }
            self.i += ntoks;
            let start = lhs.span;
            let rhs = self.parse_expr(r_bp, struct_ok);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: op.to_string(),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                self.span_from(start),
            );
        }
        self.depth -= 1;
        lhs
    }

    fn parse_postfix_dot(&mut self, base: Expr) -> Expr {
        let start = base.span;
        self.i += 1; // `.`
        match self.peek(0) {
            Some(t) if t.kind == TokKind::Ident => {
                let name = self.text(t).to_string();
                self.i += 1;
                if name == "await" {
                    return base;
                }
                // Optional turbofish before the call parens.
                if self.is_path_sep(0) && self.is_punct(2, "<") {
                    self.i += 3;
                    self.skip_angles();
                }
                if self.is_punct(0, "(") {
                    self.i += 1;
                    let args = self.parse_args(")");
                    Expr::new(
                        ExprKind::MethodCall {
                            base: Box::new(base),
                            name,
                            args,
                        },
                        self.span_from(start),
                    )
                } else {
                    Expr::new(
                        ExprKind::Field {
                            base: Box::new(base),
                            name,
                        },
                        self.span_from(start),
                    )
                }
            }
            Some(t) if t.kind == TokKind::Num => {
                let name = self.text(t).to_string();
                self.i += 1;
                Expr::new(
                    ExprKind::Field {
                        base: Box::new(base),
                        name,
                    },
                    self.span_from(start),
                )
            }
            _ => Expr::new(
                ExprKind::Opaque(vec![Stmt::Expr(base)]),
                self.span_from(start),
            ),
        }
    }

    /// Consumes a `<…>` group whose `<` was already consumed. Each `>` is
    /// its own token (the lexer emits single-byte puncts).
    fn skip_angles(&mut self) {
        let mut depth: i64 = 1;
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                match self.text(t) {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            self.i += 1;
                            return;
                        }
                    }
                    ";" | "{" | "}" => return, // not a generic list after all
                    _ => {}
                }
            }
            self.i += 1;
        }
    }

    /// Comma-separated expressions until `close` (consumed).
    fn parse_args(&mut self, close: &str) -> Vec<Expr> {
        let mut args = Vec::new();
        loop {
            if self.is_punct(0, close) {
                self.i += 1;
                return args;
            }
            if self.i >= self.hi {
                return args;
            }
            let before = self.i;
            args.push(self.parse_expr(0, true));
            if self.is_punct(0, ",") {
                self.i += 1;
            } else if self.is_punct(0, close) {
                self.i += 1;
                return args;
            } else if self.i == before {
                self.i += 1;
            }
        }
    }

    fn parse_prefix(&mut self, struct_ok: bool) -> Expr {
        let start = self.here();
        let Some(t) = self.peek(0) else {
            return Expr::new(ExprKind::Opaque(Vec::new()), start);
        };
        match t.kind {
            TokKind::Num => {
                let text = self.text(t).to_string();
                self.i += 1;
                Expr::new(ExprKind::Num(text), start)
            }
            TokKind::Str => {
                let text = self.text(t).to_string();
                self.i += 1;
                Expr::new(ExprKind::Str(text), start)
            }
            TokKind::Char | TokKind::Comment => {
                self.i += 1;
                Expr::new(ExprKind::Opaque(Vec::new()), start)
            }
            TokKind::Lifetime => {
                // Loop label `'a: loop { … }`.
                self.i += 1;
                if self.is_punct(0, ":") {
                    self.i += 1;
                }
                self.parse_prefix(struct_ok)
            }
            TokKind::Ident => self.parse_prefix_ident(struct_ok),
            TokKind::Punct => self.parse_prefix_punct(struct_ok),
        }
    }

    fn parse_prefix_punct(&mut self, struct_ok: bool) -> Expr {
        let start = self.here();
        let s = self.peek_text(0);
        match s {
            "(" => {
                self.i += 1;
                if self.is_punct(0, ")") {
                    self.i += 1;
                    return Expr::new(ExprKind::Opaque(Vec::new()), self.span_from(start));
                }
                let inner = self.parse_expr(0, true);
                if self.is_punct(0, ",") {
                    // Tuple: keep elements walkable, value opaque.
                    let mut children = vec![Stmt::Expr(inner)];
                    while self.is_punct(0, ",") {
                        self.i += 1;
                        if self.is_punct(0, ")") {
                            break;
                        }
                        children.push(Stmt::Expr(self.parse_expr(0, true)));
                    }
                    if self.is_punct(0, ")") {
                        self.i += 1;
                    } else {
                        self.skip_until(&[")"]);
                    }
                    return Expr::new(ExprKind::Opaque(children), self.span_from(start));
                }
                if self.is_punct(0, ")") {
                    self.i += 1;
                } else {
                    self.skip_until(&[")"]);
                }
                // Parens are transparent, but keep the widened span.
                Expr::new(inner.kind, self.span_from(start))
            }
            "[" => {
                self.i += 1;
                let mut children = Vec::new();
                loop {
                    if self.is_punct(0, "]") {
                        self.i += 1;
                        break;
                    }
                    if self.i >= self.hi {
                        break;
                    }
                    let before = self.i;
                    children.push(Stmt::Expr(self.parse_expr(0, true)));
                    if self.is_punct(0, ",") || self.is_punct(0, ";") {
                        self.i += 1;
                    }
                    if self.i == before {
                        self.i += 1;
                    }
                }
                Expr::new(ExprKind::Opaque(children), self.span_from(start))
            }
            "{" => {
                self.i += 1;
                let stmts = self.parse_stmts(Some("}"));
                Expr::new(ExprKind::Block(stmts), self.span_from(start))
            }
            "-" | "!" | "*" => {
                let op = s.chars().next().unwrap_or('-');
                self.i += 1;
                let operand = self.parse_expr(27, struct_ok);
                Expr::new(
                    ExprKind::Unary {
                        op,
                        operand: Box::new(operand),
                    },
                    self.span_from(start),
                )
            }
            "&" => {
                self.i += 1;
                // `&&x` is two reborrows; `& mut x` strips the mut.
                if self.is_ident(0, "mut") {
                    self.i += 1;
                }
                let operand = self.parse_expr(27, struct_ok);
                Expr::new(
                    ExprKind::Unary {
                        op: '&',
                        operand: Box::new(operand),
                    },
                    self.span_from(start),
                )
            }
            "|" => {
                // Closure: `|params| body` (params skipped, body parsed).
                self.i += 1;
                if !self.is_punct(0, "|") {
                    self.skip_until(&["|"]);
                } else {
                    self.i += 1;
                }
                if self.is_punct(0, "-") && self.is_punct(1, ">") {
                    self.i += 2;
                    self.skip_type();
                }
                let body = self.parse_expr(0, true);
                Expr::new(
                    ExprKind::Opaque(vec![Stmt::Expr(body)]),
                    self.span_from(start),
                )
            }
            "." => {
                // Prefix range `..x` / `..=x` or stray dot.
                self.i += 1;
                if self.is_punct(0, ".") {
                    self.i += 1;
                    if self.is_punct(0, "=") {
                        self.i += 1;
                    }
                    if !(self.is_punct(0, ")")
                        || self.is_punct(0, "]")
                        || self.is_punct(0, "}")
                        || self.is_punct(0, ",")
                        || self.is_punct(0, ";")
                        || self.i >= self.hi)
                    {
                        let e = self.parse_expr(8, struct_ok);
                        return Expr::new(
                            ExprKind::Opaque(vec![Stmt::Expr(e)]),
                            self.span_from(start),
                        );
                    }
                }
                Expr::new(ExprKind::Opaque(Vec::new()), self.span_from(start))
            }
            _ => {
                self.i += 1;
                Expr::new(ExprKind::Opaque(Vec::new()), self.span_from(start))
            }
        }
    }

    fn parse_prefix_ident(&mut self, struct_ok: bool) -> Expr {
        let start = self.here();
        let word = self.peek_text(0);
        match word {
            "if" => {
                self.i += 1;
                let mut children = Vec::new();
                // `if let PAT = expr` — skip the pattern, keep the expr.
                if self.is_ident(0, "let") {
                    self.i += 1;
                    self.skip_until(&["="]);
                }
                children.push(Stmt::Expr(self.parse_expr(0, false)));
                if self.is_punct(0, "{") {
                    self.i += 1;
                    children.extend(self.parse_stmts(Some("}")));
                }
                while self.is_ident(0, "else") {
                    self.i += 1;
                    if self.is_ident(0, "if") {
                        self.i += 1;
                        if self.is_ident(0, "let") {
                            self.i += 1;
                            self.skip_until(&["="]);
                        }
                        children.push(Stmt::Expr(self.parse_expr(0, false)));
                    }
                    if self.is_punct(0, "{") {
                        self.i += 1;
                        children.extend(self.parse_stmts(Some("}")));
                    }
                }
                Expr::new(ExprKind::Opaque(children), self.span_from(start))
            }
            "match" => {
                self.i += 1;
                let mut children = vec![Stmt::Expr(self.parse_expr(0, false))];
                if self.is_punct(0, "{") {
                    self.i += 1;
                    // Arms: skip `pattern =>`, parse the arm body.
                    loop {
                        if self.is_punct(0, "}") {
                            self.i += 1;
                            break;
                        }
                        if self.i >= self.hi {
                            break;
                        }
                        let before = self.i;
                        if !self.skip_to_arrow() {
                            // No `=>` found before the closing brace.
                            self.skip_until(&["}"]);
                            break;
                        }
                        children.push(Stmt::Expr(self.parse_expr(0, true)));
                        if self.is_punct(0, ",") {
                            self.i += 1;
                        }
                        if self.i == before {
                            self.i += 1;
                        }
                    }
                }
                Expr::new(ExprKind::Opaque(children), self.span_from(start))
            }
            "while" => {
                self.i += 1;
                let mut children = Vec::new();
                if self.is_ident(0, "let") {
                    self.i += 1;
                    self.skip_until(&["="]);
                }
                children.push(Stmt::Expr(self.parse_expr(0, false)));
                if self.is_punct(0, "{") {
                    self.i += 1;
                    children.extend(self.parse_stmts(Some("}")));
                }
                Expr::new(ExprKind::Opaque(children), self.span_from(start))
            }
            "for" => {
                self.i += 1;
                self.skip_until(&["in"]);
                let mut children = vec![Stmt::Expr(self.parse_expr(0, false))];
                if self.is_punct(0, "{") {
                    self.i += 1;
                    children.extend(self.parse_stmts(Some("}")));
                }
                Expr::new(ExprKind::Opaque(children), self.span_from(start))
            }
            "loop" => {
                self.i += 1;
                let mut children = Vec::new();
                if self.is_punct(0, "{") {
                    self.i += 1;
                    children.extend(self.parse_stmts(Some("}")));
                }
                Expr::new(ExprKind::Opaque(children), self.span_from(start))
            }
            "unsafe" => {
                self.i += 1;
                if self.is_punct(0, "{") {
                    self.i += 1;
                    let stmts = self.parse_stmts(Some("}"));
                    return Expr::new(ExprKind::Block(stmts), self.span_from(start));
                }
                Expr::new(ExprKind::Opaque(Vec::new()), self.span_from(start))
            }
            "move" => {
                self.i += 1;
                self.parse_prefix(struct_ok)
            }
            "return" | "break" | "continue" => {
                self.i += 1;
                let mut children = Vec::new();
                if !(self.i >= self.hi
                    || self.is_punct(0, ";")
                    || self.is_punct(0, "}")
                    || self.is_punct(0, ")")
                    || self.is_punct(0, ","))
                {
                    children.push(Stmt::Expr(self.parse_expr(0, struct_ok)));
                }
                Expr::new(ExprKind::Opaque(children), self.span_from(start))
            }
            _ => self.parse_path_expr(struct_ok),
        }
    }

    /// Skips a match-arm pattern up to its `=>` (consumed). Returns false if
    /// the arm has no arrow before the arm list closes.
    fn skip_to_arrow(&mut self) -> bool {
        let mut depth: i64 = 0;
        while let Some(t) = self.peek(0) {
            let s = self.text(t);
            if t.kind == TokKind::Punct {
                match s {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "}" => {
                        if depth == 0 {
                            return false;
                        }
                        depth -= 1;
                    }
                    "=" if depth == 0 => {
                        let arrow = self.peek(1).is_some_and(|n| {
                            n.kind == TokKind::Punct && self.text(n) == ">" && t.end == n.start
                        });
                        if arrow {
                            self.i += 2;
                            return true;
                        }
                    }
                    _ => {}
                }
            }
            self.i += 1;
        }
        false
    }

    /// `seg(::seg)*` then one of: macro bang, call parens, struct literal,
    /// or a plain path reference.
    fn parse_path_expr(&mut self, struct_ok: bool) -> Expr {
        let start = self.here();
        let mut segs: Vec<String> = Vec::new();
        loop {
            match self.peek(0) {
                Some(t) if t.kind == TokKind::Ident => {
                    segs.push(self.text(t).to_string());
                    self.i += 1;
                }
                _ => break,
            }
            if self.is_path_sep(0) {
                if self.is_punct(2, "<") {
                    // Turbofish `::<…>`.
                    self.i += 3;
                    self.skip_angles();
                    break;
                }
                if self.peek(2).is_some_and(|t| t.kind == TokKind::Ident) {
                    self.i += 2;
                    continue;
                }
            }
            break;
        }
        if segs.is_empty() {
            self.i += 1;
            return Expr::new(ExprKind::Opaque(Vec::new()), self.span_from(start));
        }
        if self.is_punct(0, "!") && !self.is_punct(1, "=") {
            // Macro invocation.
            self.i += 1;
            let name = segs.last().cloned().unwrap_or_default();
            let args = if self.is_punct(0, "(") || self.is_punct(0, "[") {
                let close = if self.is_punct(0, "(") { ")" } else { "]" };
                self.i += 1;
                self.parse_args(close)
            } else if self.is_punct(0, "{") {
                self.i += 1;
                self.parse_args("}")
            } else {
                Vec::new()
            };
            return Expr::new(ExprKind::Macro { name, args }, self.span_from(start));
        }
        if self.is_punct(0, "(") {
            self.i += 1;
            let args = self.parse_args(")");
            return Expr::new(ExprKind::Call { path: segs, args }, self.span_from(start));
        }
        if struct_ok && self.is_punct(0, "{") && self.looks_like_struct_lit() {
            self.i += 1;
            let fields = self.parse_struct_fields();
            return Expr::new(
                ExprKind::StructLit { path: segs, fields },
                self.span_from(start),
            );
        }
        Expr::new(ExprKind::Path(segs), self.span_from(start))
    }

    /// After a path, decides `Path { … }` struct literal vs. a block that
    /// happens to follow (`match x {` handled upstream via `struct_ok`).
    fn looks_like_struct_lit(&self) -> bool {
        if self.is_punct(1, "}") {
            return true; // `Path {}`
        }
        if self.is_punct(1, ".") && self.is_punct(2, ".") {
            return true; // `Path { ..base }`
        }
        if self.peek(1).is_some_and(|t| t.kind == TokKind::Ident) {
            // `name:` (not `name::`), `name,`, or `name }` shorthand.
            if self.is_punct(2, ":") && !self.is_path_sep(2) {
                return true;
            }
            if self.is_punct(2, ",") || self.is_punct(2, "}") {
                return true;
            }
        }
        false
    }

    fn parse_struct_fields(&mut self) -> Vec<FieldInit> {
        let mut fields = Vec::new();
        loop {
            if self.is_punct(0, "}") {
                self.i += 1;
                return fields;
            }
            if self.i >= self.hi {
                return fields;
            }
            let before = self.i;
            if self.is_punct(0, ".") && self.is_punct(1, ".") {
                // `..base` functional update.
                self.i += 2;
                let _ = self.parse_expr(0, true);
            } else if self.peek(0).is_some_and(|t| t.kind == TokKind::Ident) {
                let fspan = self.here();
                let name = self.peek_text(0).to_string();
                self.i += 1;
                let value = if self.is_punct(0, ":") && !self.is_path_sep(0) {
                    self.i += 1;
                    Some(self.parse_expr(0, true))
                } else {
                    None
                };
                fields.push(FieldInit {
                    name,
                    value,
                    span: self.span_from(fspan),
                });
            }
            if self.is_punct(0, ",") {
                self.i += 1;
            }
            if self.i == before {
                self.i += 1;
            }
        }
    }
}

// ---- signature helpers ------------------------------------------------------

/// Extracts `(name, span)` pairs for the value parameters of the `fn` whose
/// body starts at token index `body_lo` (the first token *inside* the brace).
/// Walks backwards to the `fn` keyword, then forward through the parameter
/// parens collecting `ident :` at paren depth 1, skipping `self`.
pub fn param_names(src: &str, toks: &[Tok], body_lo: usize) -> Vec<String> {
    // Find the `fn` keyword: scan back from the body brace.
    let brace = body_lo.saturating_sub(1);
    let mut fn_at = None;
    let lo = brace.saturating_sub(256); // signatures are short
    for k in (lo..=brace.min(toks.len().saturating_sub(1))).rev() {
        let Some(t) = toks.get(k) else { continue };
        if t.kind == TokKind::Ident && t.text(src) == "fn" {
            fn_at = Some(k);
            break;
        }
    }
    let Some(fn_at) = fn_at else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    let mut k = fn_at;
    while k < body_lo.min(toks.len()) {
        let Some(t) = toks.get(k) else { break };
        let s = t.text(src);
        if t.kind == TokKind::Punct {
            match s {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
        } else if t.kind == TokKind::Ident && depth == 1 && s != "self" && s != "mut" {
            // `ident` directly followed by a single `:` is a parameter name.
            let colon = toks.get(k + 1).is_some_and(|n| {
                n.kind == TokKind::Punct
                    && n.text(src) == ":"
                    && !toks.get(k + 2).is_some_and(|m| {
                        m.kind == TokKind::Punct && m.text(src) == ":" && n.end == m.start
                    })
            });
            if colon {
                out.push(s.to_string());
                // Skip the type until `,` or `)` at this depth.
                k += 2;
                let mut tdepth: i64 = 0;
                while k < body_lo.min(toks.len()) {
                    let Some(t2) = toks.get(k) else { break };
                    let s2 = t2.text(src);
                    if t2.kind == TokKind::Punct {
                        match s2 {
                            "(" | "[" | "<" => tdepth += 1,
                            ")" => {
                                if tdepth == 0 {
                                    depth -= 1;
                                    break;
                                }
                                tdepth -= 1;
                            }
                            "]" | ">" => tdepth -= 1,
                            "," if tdepth == 0 => break,
                            _ => {}
                        }
                    }
                    k += 1;
                }
            }
        }
        if depth <= 0 && s == ")" {
            break;
        }
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn parse(src: &str) -> Vec<Stmt> {
        let toks = lex::lex(src);
        parse_body(src, &toks, 0, toks.len())
    }

    /// Renders a compact s-expression for golden tests.
    fn sexp_stmt(s: &Stmt) -> String {
        match s {
            Stmt::Let { name, init, .. } => match init {
                Some(e) => format!("(let {name} {})", sexp(e)),
                None => format!("(let {name})"),
            },
            Stmt::Expr(e) => sexp(e),
            Stmt::Ret(Some(e), _) => format!("(ret {})", sexp(e)),
            Stmt::Ret(None, _) => "(ret)".to_string(),
            Stmt::Tail(e) => format!("(tail {})", sexp(e)),
        }
    }

    fn sexp(e: &Expr) -> String {
        match &e.kind {
            ExprKind::Num(n) => n.clone(),
            ExprKind::Str(_) => "str".to_string(),
            ExprKind::Path(p) => p.join("::"),
            ExprKind::Field { base, name } => format!("(. {} {name})", sexp(base)),
            ExprKind::MethodCall { base, name, args } => {
                let a: Vec<String> = args.iter().map(sexp).collect();
                format!("(m {} {name} [{}])", sexp(base), a.join(" "))
            }
            ExprKind::Call { path, args } => {
                let a: Vec<String> = args.iter().map(sexp).collect();
                format!("(call {} [{}])", path.join("::"), a.join(" "))
            }
            ExprKind::Macro { name, args } => {
                let a: Vec<String> = args.iter().map(sexp).collect();
                format!("(mac {name} [{}])", a.join(" "))
            }
            ExprKind::Unary { op, operand } => format!("({op} {})", sexp(operand)),
            ExprKind::Binary { op, lhs, rhs } => {
                format!("({op} {} {})", sexp(lhs), sexp(rhs))
            }
            ExprKind::Cast { operand, ty } => format!("(as {} {ty})", sexp(operand)),
            ExprKind::Index { base, index } => format!("(ix {} {})", sexp(base), sexp(index)),
            ExprKind::StructLit { path, fields } => {
                let fs: Vec<String> = fields
                    .iter()
                    .map(|f| match &f.value {
                        Some(v) => format!("{}:{}", f.name, sexp(v)),
                        None => f.name.clone(),
                    })
                    .collect();
                format!("(lit {} {{{}}})", path.join("::"), fs.join(" "))
            }
            ExprKind::Block(stmts) => {
                let ss: Vec<String> = stmts.iter().map(sexp_stmt).collect();
                format!("(block {})", ss.join(" "))
            }
            ExprKind::Opaque(stmts) => {
                let ss: Vec<String> = stmts.iter().map(sexp_stmt).collect();
                format!("(? {})", ss.join(" "))
            }
        }
    }

    fn golden(src: &str, want: &str) {
        let got: Vec<String> = parse(src).iter().map(sexp_stmt).collect();
        assert_eq!(got.join(" ; "), want, "src: {src}");
    }

    #[test]
    fn golden_precedence_and_calls() {
        golden("a + b * c", "(tail (+ a (* b c)))");
        golden(
            "let e = spikes as f64 * p.read_energy_pj * 1e-12;",
            "(let e (* (* (as spikes f64) (. p read_energy_pj)) 1e-12))",
        );
        golden(
            "self.timing.forward_phase_ns(l).max(x)",
            "(tail (m (m (. self timing) forward_phase_ns [l]) max [x]))",
        );
    }

    #[test]
    fn golden_struct_literal_and_shorthand() {
        golden(
            "RunEstimate { cycles, time_s: ns * 1e-9, }",
            "(tail (lit RunEstimate {cycles time_s:(* ns 1e-9)}))",
        );
    }

    #[test]
    fn golden_let_with_type_and_cast() {
        golden(
            "let x: Vec<(u8, u8)> = mk(); let y = n as f64 / d;",
            "(let x (call mk [])) ; (let y (/ (as n f64) d))",
        );
    }

    #[test]
    fn golden_if_match_are_opaque_but_walked() {
        golden(
            "if a_ns > b_ns { a_ns } else { b_ns }",
            "(tail (? (> a_ns b_ns) (tail a_ns) (tail b_ns)))",
        );
        golden(
            "match k { 0 => x_ns, _ => y_ns, }",
            "(tail (? k x_ns y_ns))",
        );
    }

    #[test]
    fn golden_macro_and_return() {
        golden(
            "return format!(\"{}\", x_ns); ",
            "(ret (mac format [str x_ns]))",
        );
    }

    #[test]
    fn golden_comparison_chain_and_assign() {
        golden("total += e_pj * 1e-12;", "(+= total (* e_pj 1e-12))");
        golden("a <= b && c != d", "(tail (&& (<= a b) (!= c d)))");
    }

    #[test]
    fn spans_cover_their_source() {
        let src = "let e = a_pj * 1e-12;";
        let stmts = parse(src);
        let Stmt::Let { init: Some(e), .. } = &stmts[0] else {
            panic!("expected let: {stmts:?}");
        };
        assert_eq!(&src[e.span.start..e.span.end], "a_pj * 1e-12");
        let ExprKind::Binary { lhs, rhs, .. } = &e.kind else {
            panic!("expected binary: {e:?}");
        };
        assert_eq!(&src[lhs.span.start..lhs.span.end], "a_pj");
        assert_eq!(&src[rhs.span.start..rhs.span.end], "1e-12");
    }

    #[test]
    fn closures_and_tuples_are_opaque_with_walkable_children() {
        let stmts = parse("v.iter().map(|x| x * k_ns).sum::<f64>()");
        let mut seen_mul = false;
        for s in &stmts {
            s.walk(&mut |e| {
                if let ExprKind::Binary { op, .. } = &e.kind {
                    if op == "*" {
                        seen_mul = true;
                    }
                }
            });
        }
        assert!(seen_mul, "{stmts:?}");
    }

    #[test]
    fn param_names_from_signature() {
        let src =
            "pub fn forward_phase_ns(&self, layer: &LayerCost, out_words: u64) -> f64 { 0.0 }";
        let toks = lex::lex(src);
        // Find the body: first token after `{`.
        let open = toks
            .iter()
            .position(|t| t.text(src) == "{")
            .expect("has body");
        let names = param_names(src, &toks, open + 1);
        assert_eq!(names, vec!["layer", "out_words"]);
    }

    #[test]
    fn never_panics_on_unbalanced_soup() {
        for src in [
            "((((((((",
            "}}}}",
            "let = = =",
            "a.b.c.",
            "x as ",
            "match {",
            "if {} else",
            "|a, b",
            "Foo { x: ",
            "1e99e9 .. !",
            "::<>::",
            "let (a, b) = ;",
            "&&&&& mut mut",
            "# # [ [",
        ] {
            let toks = lex::lex(src);
            let stmts = parse_body(src, &toks, 0, toks.len());
            for s in &stmts {
                s.walk(&mut |e| {
                    assert!(e.span.start <= e.span.end && e.span.end <= src.len());
                });
            }
        }
    }
}
