//! A small string/char/raw-string/nested-comment-aware Rust lexer.
//!
//! This is the token stream the semantic passes ([`crate::callgraph`],
//! PL060/PL061/PL062) and the `src-lint` sanitizer are built on. It is *not*
//! a full Rust lexer — it classifies just enough structure to be reliable
//! about the things that derail textual scanning:
//!
//! * string literals (`"…"`), raw strings (`r"…"`, `r##"…"##`), byte and
//!   C strings (`b"…"`, `br#"…"#`, `c"…"`, `cr"…"`),
//! * char and byte-char literals (`'{'`, `'\''`, `b'\n'`) vs. lifetimes
//!   (`'a`, `'static`),
//! * line comments and **nested** block comments (`/* /* */ */`),
//! * raw identifiers (`r#fn`).
//!
//! Guarantees: lexing never panics on arbitrary input (property-tested on
//! byte soup), always terminates, and the concatenated token spans plus
//! skipped whitespace reconstruct the input exactly (spans are
//! non-overlapping and monotonically increasing).

/// Token classes. Keywords are [`Ident`](TokKind::Ident)s; suffixed numeric
/// literals are a single [`Num`](TokKind::Num).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers `r#name` included).
    Ident,
    /// `'a`, `'static` — a quote followed by an identifier, no closing quote.
    Lifetime,
    /// `'x'`, `'\n'`, `b'x'` — closed quote literal.
    Char,
    /// Any string-like literal: plain, raw, byte, C, with any hash depth.
    Str,
    /// Numeric literal (integers, floats, hex/oct/bin, `1_000`, `2.5e3`).
    Num,
    /// One punctuation byte (`::` arrives as two `:` tokens).
    Punct,
    /// Line or block comment (only emitted by [`lex_raw`]).
    Comment,
}

/// One token: classification plus the byte span and 1-based start line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Tok {
    /// The token's text within `src` (lossy if the file is not UTF-8 clean).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Lexer<'a> {
    bytes: &'a [u8],
    i: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    /// Advances one byte, counting newlines. Saturates at EOF so a
    /// `bump_n(2)` over a trailing escape cannot push spans past the end.
    fn bump(&mut self) {
        if let Some(b) = self.peek(0) {
            if b == b'\n' {
                self.line += 1;
            }
            self.i += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes bytes while `f` holds.
    fn eat_while(&mut self, f: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek(0) {
            if f(b) {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// At `"` (the opening quote): consumes the string body honouring `\`
    /// escapes. Unterminated strings run to EOF — still no panic.
    fn eat_plain_string(&mut self) {
        self.bump(); // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// At the first `#` or `"` of a raw string (after the `r`/`br`/`cr`
    /// prefix): consumes `#…#"…"#…#`. Returns `false` if this is not
    /// actually a raw string opener (e.g. `r#ident`).
    fn eat_raw_string(&mut self) -> bool {
        let mut hashes = 0;
        while self.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some(b'"') {
            return false;
        }
        self.bump_n(hashes + 1); // hashes + opening quote
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut closing = 0;
                while closing < hashes && self.peek(1 + closing) == Some(b'#') {
                    closing += 1;
                }
                if closing == hashes {
                    self.bump_n(1 + hashes);
                    return true;
                }
            }
            self.bump();
        }
        true // unterminated: ran to EOF
    }

    /// At `'`: char literal, byte-char payload, or lifetime.
    fn eat_quote(&mut self) -> TokKind {
        self.bump(); // the quote
        match self.peek(0) {
            // Escaped char: '\n', '\'', '\u{1F600}'.
            Some(b'\\') => {
                self.bump_n(2); // backslash + first payload byte
                while let Some(b) = self.peek(0) {
                    if b == b'\'' {
                        self.bump();
                        break;
                    }
                    if b == b'\n' {
                        break; // unterminated on this line; stop cleanly
                    }
                    self.bump();
                }
                TokKind::Char
            }
            // 'a, '_, 'static … or 'x'. Disambiguate by the byte after the
            // identifier run: a closing quote makes it a char literal.
            Some(b) if is_ident_start(b) => {
                let mut n = 0;
                while self.peek(n).is_some_and(is_ident_continue) {
                    n += 1;
                }
                if self.peek(n) == Some(b'\'') {
                    self.bump_n(n + 1);
                    TokKind::Char
                } else {
                    self.eat_while(is_ident_continue);
                    TokKind::Lifetime
                }
            }
            // '(' style punctuation payload: char iff closed right after.
            Some(_) if self.peek(1) == Some(b'\'') => {
                self.bump_n(2);
                TokKind::Char
            }
            _ => TokKind::Punct, // lone quote
        }
    }

    /// At a digit: numeric literal (conservative — swallows alphanumeric
    /// suffixes and a decimal point followed by a digit).
    fn eat_number(&mut self) {
        let start = self.i;
        self.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            self.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        }
        // Signed exponent (`2.5e-3`, `1E+9`) — but not for radix-prefixed
        // literals, where `0xE-3` is a subtraction.
        let radix = self.bytes.get(start) == Some(&b'0')
            && matches!(self.bytes.get(start + 1), Some(b'x' | b'o' | b'b'));
        if !radix
            && self
                .bytes
                .get(self.i.wrapping_sub(1))
                .is_some_and(|&b| b == b'e' || b == b'E')
            && matches!(self.peek(0), Some(b'+' | b'-'))
            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            self.bump();
            self.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        }
    }

    /// At `/`: comment (line or nested block), or plain punct. Returns the
    /// kind actually consumed.
    fn eat_slash(&mut self) -> TokKind {
        match self.peek(1) {
            Some(b'/') => {
                self.eat_while(|b| b != b'\n');
                TokKind::Comment
            }
            Some(b'*') => {
                self.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(0), self.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            self.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            self.bump_n(2);
                        }
                        (Some(_), _) => self.bump(),
                        (None, _) => break, // unterminated
                    }
                }
                TokKind::Comment
            }
            _ => {
                self.bump();
                TokKind::Punct
            }
        }
    }

    /// String-literal prefixes: does an ident starting here open a string?
    /// Handles `r"`, `r#"`, `b"`, `br#"`, `c"`, `cr##"`, and `b'x'`.
    fn try_string_prefix(&mut self) -> Option<TokKind> {
        let (skip, raw) = match (self.peek(0), self.peek(1)) {
            (Some(b'r'), _) => (1, true),
            (Some(b'b'), Some(b'r')) | (Some(b'c'), Some(b'r')) => (2, true),
            (Some(b'b'), Some(b'\'')) => {
                self.bump(); // the `b`; eat_quote handles the rest
                return Some(self.eat_quote());
            }
            (Some(b'b'), Some(b'"')) | (Some(b'c'), Some(b'"')) => (1, false),
            _ => return None,
        };
        if raw {
            // A raw opener is hashes-then-quote; `r#ident` is a raw ident.
            let mut h = 0;
            while self.peek(skip + h) == Some(b'#') {
                h += 1;
            }
            if self.peek(skip + h) != Some(b'"') {
                if h == 1 && self.peek(skip + 1).is_some_and(is_ident_start) && skip == 1 {
                    // r#ident — raw identifier.
                    self.bump_n(2);
                    self.eat_while(is_ident_continue);
                    return Some(TokKind::Ident);
                }
                return None;
            }
            self.bump_n(skip);
            self.eat_raw_string();
            Some(TokKind::Str)
        } else {
            self.bump_n(skip);
            self.eat_plain_string();
            Some(TokKind::Str)
        }
    }

    fn next_token(&mut self) -> Option<Tok> {
        self.eat_while(|b| b.is_ascii_whitespace());
        let start = self.i;
        let line = self.line;
        let b = self.peek(0)?;
        let kind = match b {
            b'"' => {
                self.eat_plain_string();
                TokKind::Str
            }
            b'\'' => self.eat_quote(),
            b'/' => self.eat_slash(),
            b'r' | b'b' | b'c' => match self.try_string_prefix() {
                Some(k) => k,
                None => {
                    self.eat_while(is_ident_continue);
                    TokKind::Ident
                }
            },
            _ if b.is_ascii_digit() => {
                self.eat_number();
                TokKind::Num
            }
            _ if is_ident_start(b) => {
                self.eat_while(is_ident_continue);
                TokKind::Ident
            }
            _ => {
                self.bump();
                TokKind::Punct
            }
        };
        // Defensive: guarantee progress even if a handler consumed nothing.
        if self.i == start {
            self.bump();
        }
        Some(Tok {
            kind,
            start,
            end: self.i,
            line,
        })
    }
}

/// Lexes `src` into tokens **including** comments.
pub fn lex_raw(src: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        bytes: src.as_bytes(),
        i: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(t) = lx.next_token() {
        out.push(t);
    }
    out
}

/// Lexes `src` into tokens with comments dropped — the stream the call-graph
/// extractor and the semantic passes consume.
pub fn lex(src: &str) -> Vec<Tok> {
    lex_raw(src)
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect()
}

/// Returns `src` with every comment blanked and every string/char literal's
/// interior blanked (quotes kept, newlines preserved), leaving all other
/// bytes — and therefore all byte offsets, lines and columns — untouched.
///
/// This is the sanitizer `src-lint`'s line-oriented needles run on: quoted
/// braces, quoted quotes, commented-out code and multi-line raw strings can
/// no longer derail pattern matching or `#[cfg(test)]` brace tracking.
pub fn mask(src: &str) -> String {
    let mut out: Vec<u8> = src.as_bytes().to_vec();
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in out.iter_mut().take(to).skip(from) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    for t in lex_raw(src) {
        match t.kind {
            TokKind::Comment => blank(&mut out, t.start, t.end),
            TokKind::Str if t.end - t.start >= 2 => {
                blank(&mut out, t.start, t.end);
                if let Some(b) = out.get_mut(t.start) {
                    *b = b'"';
                }
                // An unterminated literal can end on a newline — keep it.
                if let Some(b) = out.get_mut(t.end - 1) {
                    if *b != b'\n' {
                        *b = b'"';
                    }
                }
            }
            TokKind::Char if t.end - t.start >= 2 => {
                blank(&mut out, t.start, t.end);
                if let Some(b) = out.get_mut(t.start) {
                    *b = b'\'';
                }
                if let Some(b) = out.get_mut(t.end - 1) {
                    if *b != b'\n' {
                        *b = b'\'';
                    }
                }
            }
            _ => {}
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_numbers_punct() {
        let got = kinds("fn add(a: u32) -> u32 { a + 1_000 }");
        assert_eq!(got[0], (TokKind::Ident, "fn".into()));
        assert_eq!(got[1], (TokKind::Ident, "add".into()));
        assert!(got.contains(&(TokKind::Num, "1_000".into())));
    }

    #[test]
    fn lifetime_vs_char() {
        let got = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let b = '\\''; }");
        let lifetimes: Vec<_> = got.iter().filter(|t| t.0 == TokKind::Lifetime).collect();
        let chars: Vec<_> = got.iter().filter(|t| t.0 == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{got:?}");
        assert_eq!(chars.len(), 2, "{got:?}");
        assert_eq!(chars[0].1, "'a'");
    }

    #[test]
    fn nested_block_comments() {
        let got = kinds("a /* x /* y */ z */ b");
        assert_eq!(
            got,
            vec![(TokKind::Ident, "a".into()), (TokKind::Ident, "b".into())]
        );
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let src = "let s = r#\"quote \" inside\"#; let k = r#fn; let t = r\"plain\";";
        let got = kinds(src);
        assert!(got.contains(&(TokKind::Str, "r#\"quote \" inside\"#".into())));
        assert!(got.contains(&(TokKind::Ident, "r#fn".into())));
        assert!(got.contains(&(TokKind::Str, "r\"plain\"".into())));
    }

    #[test]
    fn byte_and_c_strings() {
        let got = kinds("let a = b\"x\"; let b = br#\"y\"#; let c = c\"z\"; let d = b'q';");
        let strs = got.iter().filter(|t| t.0 == TokKind::Str).count();
        assert_eq!(strs, 3, "{got:?}");
        assert!(got.contains(&(TokKind::Char, "b'q'".into())));
    }

    #[test]
    fn mask_blanks_literals_and_comments_only() {
        let src = "let s = \"a // }{ b\"; // tail }{\nlet c = '{'; /* }{ */ x";
        let m = mask(src);
        assert!(!m.contains("}{"), "{m}");
        assert!(m.contains("let s = \""));
        assert!(m.contains("let c = '"));
        assert!(m.contains('x'));
        assert_eq!(m.len(), src.len());
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn mask_handles_multiline_raw_string() {
        let src = "let s = r#\"line{\nline}\"#;\nlet x = 1;";
        let m = mask(src);
        assert!(!m.contains("line{"));
        assert!(m.contains("let x = 1;"));
        assert_eq!(m.lines().count(), 3);
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let toks = lex("a\nbb\n\nccc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn spans_are_monotone_and_in_bounds() {
        let src = "fn f() { \"s\" + 'c' /* k */ }";
        let mut last = 0;
        for t in lex_raw(src) {
            assert!(t.start >= last && t.end <= src.len() && t.start < t.end);
            last = t.end;
        }
    }

    #[test]
    fn unterminated_constructs_do_not_hang_or_panic() {
        for src in [
            "\"unterminated",
            "r#\"unterminated",
            "/* unterminated /* nested",
            "'\\",
            "b\"",
            "r###",
            "'",
        ] {
            let _ = lex(src);
            let _ = mask(src);
        }
    }
}
