//! PL060 — panic reachability over the call graph.
//!
//! A function *directly* panics if its body contains a panicking macro
//! (`panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert!`,
//! `assert_eq!`, `assert_ne!` — `debug_assert*` is compiled out of release
//! builds and exempt) or a `.unwrap()` / `.expect(…)` method call; slice
//! indexing (`expr[…]`) is a third, opt-in category. Direct sites are then
//! propagated backwards through [`Workspace::edges`] to a fixed point, and
//! every flagged function carries a **witness call chain** down to a
//! concrete panic site.
//!
//! Reporting is gated on the *public surface*: `pub` functions whose name
//! matches the configured prefixes/substrings (by default the `try_*`
//! Result constructors plus the checkpoint/report-facing names). The
//! analysis itself covers every function, so callers can also query
//! [`Analysis::can_panic`] directly.
//!
//! Soundness caveat (see `check::callgraph`): call edges are best-effort —
//! calls through closures, fn pointers, or macros are invisible, so "no
//! finding" does not prove panic-freedom; it proves no *visible* path.

use crate::callgraph::{FnItem, Recv, Workspace};
use crate::diag::{self, Diagnostic};
use crate::lex::TokKind;
use std::collections::BTreeMap;

/// Macros whose expansion unconditionally or conditionally panics.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Method names that panic on the error/none case.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// What kind of direct panic site a function contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!` / `assert!` / … macro invocation.
    Macro(String),
    /// `.unwrap()` / `.expect(…)`.
    Method(String),
    /// `expr[…]` slice/array indexing (opt-in).
    SliceIndex,
}

impl core::fmt::Display for PanicKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PanicKind::Macro(m) => write!(f, "{m}!"),
            PanicKind::Method(m) => write!(f, ".{m}()"),
            PanicKind::SliceIndex => f.write_str("slice index"),
        }
    }
}

/// The first direct panic site found in one function body.
#[derive(Debug, Clone)]
pub struct DirectSite {
    pub kind: PanicKind,
    /// 1-based source line of the site.
    pub line: usize,
}

/// Gate configuration for [`findings`].
#[derive(Debug, Clone)]
pub struct Options {
    /// Count `expr[…]` indexing as a panic source (off by default — the
    /// line lint's scoped `rawindex` rule covers the storage vectors).
    pub include_slice_index: bool,
    /// A `pub` fn whose name starts with one of these is surface.
    pub surface_prefixes: Vec<String>,
    /// A `pub` fn whose name contains one of these is surface.
    pub surface_substrings: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            include_slice_index: false,
            surface_prefixes: vec!["try_".to_string()],
            surface_substrings: vec![
                "checkpoint".to_string(),
                "report".to_string(),
                "resume".to_string(),
            ],
        }
    }
}

/// Per-function panic-reachability facts.
#[derive(Debug)]
pub struct Analysis {
    /// fn index → its first direct panic site, if any.
    pub direct: Vec<Option<DirectSite>>,
    /// fn index → `(callee fn index, call line)` of the first edge through
    /// which a panic becomes reachable (for functions with no direct site).
    pub via: Vec<Option<(usize, usize)>>,
}

impl Analysis {
    /// `true` if `f` can transitively reach a panic site.
    pub fn can_panic(&self, f: usize) -> bool {
        self.direct.get(f).is_some_and(Option::is_some)
            || self.via.get(f).is_some_and(Option::is_some)
    }

    /// Renders the witness call chain from `start` down to a direct site:
    /// `a (f.rs:3) -> b (f.rs:9) -> assert! at f.rs:10`.
    pub fn witness(&self, ws: &Workspace, start: usize) -> String {
        let mut chain = String::new();
        let mut at = start;
        let mut hops = 0usize;
        while let Some(f) = ws.fns.get(at) {
            if !chain.is_empty() {
                chain.push_str(" -> ");
            }
            chain.push_str(&format!("{} ({})", f.qualified(), ws.location(f)));
            if let Some(Some(site)) = self.direct.get(at) {
                let file = ws.files.get(f.file).map(|s| s.path.as_str()).unwrap_or("?");
                chain.push_str(&format!(" -> {} at {file}:{}", site.kind, site.line));
                break;
            }
            match self.via.get(at) {
                Some(&Some((next, _line))) if hops < 32 && next != at => {
                    at = next;
                    hops += 1;
                }
                _ => break,
            }
        }
        chain
    }
}

/// Scans one function body for its first direct panic site.
fn direct_site(ws: &Workspace, f: &FnItem, include_slice_index: bool) -> Option<DirectSite> {
    for call in &f.calls {
        match &call.recv {
            Recv::Macro if PANIC_MACROS.contains(&call.name.as_str()) => {
                return Some(DirectSite {
                    kind: PanicKind::Macro(call.name.clone()),
                    line: call.line,
                });
            }
            Recv::Dot if PANIC_METHODS.contains(&call.name.as_str()) => {
                return Some(DirectSite {
                    kind: PanicKind::Method(call.name.clone()),
                    line: call.line,
                });
            }
            _ => {}
        }
    }
    if include_slice_index {
        if let (Some((lo, hi)), Some(file)) = (f.body, ws.files.get(f.file)) {
            for k in lo..hi {
                let Some(t) = file.toks.get(k) else { break };
                if t.kind == TokKind::Punct && t.text(&file.src) == "[" {
                    // Indexing when preceded by an expression tail; `[` after
                    // an operator/opener is an array literal or attribute.
                    let indexing =
                        k.checked_sub(1)
                            .and_then(|p| file.toks.get(p))
                            .is_some_and(|p| {
                                let s = p.text(&file.src);
                                p.kind == TokKind::Ident && !matches!(s, "mut" | "ref" | "return")
                                    || s == ")"
                                    || s == "]"
                            });
                    if indexing {
                        return Some(DirectSite {
                            kind: PanicKind::SliceIndex,
                            line: t.line,
                        });
                    }
                }
            }
        }
    }
    None
}

/// Runs the fixed-point propagation over the whole workspace.
pub fn analyze(ws: &Workspace, opts: &Options) -> Analysis {
    let n = ws.fns.len();
    let mut direct: Vec<Option<DirectSite>> = Vec::with_capacity(n);
    for f in &ws.fns {
        direct.push(direct_site(ws, f, opts.include_slice_index));
    }

    let edges = ws.edges();
    // Reverse adjacency: callee → (caller, call line).
    let mut rev: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (caller, outs) in edges.iter().enumerate() {
        for &(callee, line) in outs {
            if let Some(slot) = rev.get_mut(callee) {
                slot.push((caller, line));
            }
        }
    }

    let mut via: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut work: Vec<usize> = (0..n).filter(|&i| direct[i].is_some()).collect();
    while let Some(f) = work.pop() {
        for &(caller, line) in rev.get(f).map(Vec::as_slice).unwrap_or(&[]) {
            if direct[caller].is_none() && via[caller].is_none() {
                via[caller] = Some((f, line));
                work.push(caller);
            }
        }
    }
    Analysis { direct, via }
}

/// `true` if `f` belongs to the reported public surface.
fn is_surface(f: &FnItem, opts: &Options) -> bool {
    f.is_pub
        && (opts
            .surface_prefixes
            .iter()
            .any(|p| f.name.starts_with(p.as_str()))
            || opts
                .surface_substrings
                .iter()
                .any(|s| f.name.contains(s.as_str())))
}

/// PL060 findings for the configured surface, with one witness chain each,
/// plus the per-file counts `src-lint --semantic` checks against the
/// allowlist. Deterministic order (workspace file/function order).
pub fn findings(ws: &Workspace, opts: &Options) -> (Vec<Diagnostic>, BTreeMap<String, usize>) {
    let analysis = analyze(ws, opts);
    let mut diags = Vec::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if !is_surface(f, opts) || !analysis.can_panic(i) {
            continue;
        }
        let chain = analysis.witness(ws, i);
        diags.push(Diagnostic::warning(
            diag::SEM_PANIC_REACHABLE,
            ws.location(f),
            format!("pub fn `{}` can reach a panic: {chain}", f.qualified()),
            "return the error through Result (or demote the site to debug_assert!) \
             so the public surface cannot abort",
        ));
        let path = ws
            .files
            .get(f.file)
            .map(|s| s.path.clone())
            .unwrap_or_default();
        *counts.entry(path).or_insert(0) += 1;
    }
    (diags, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::build(vec![("crates/x/src/lib.rs".to_string(), src.to_string())])
    }

    #[test]
    fn direct_and_transitive_panics_are_found() {
        let w = ws(
            "fn deep() { panic!(\"boom\") }\nfn mid() { deep() }\npub fn try_top() -> u8 { mid(); 0 }\nfn clean() {}",
        );
        let a = analyze(&w, &Options::default());
        assert!(a.can_panic(0) && a.can_panic(1) && a.can_panic(2));
        assert!(!a.can_panic(3));
        let chain = a.witness(&w, 2);
        assert!(chain.contains("try_top"), "{chain}");
        assert!(chain.contains("panic! at crates/x/src/lib.rs:1"), "{chain}");
    }

    #[test]
    fn debug_assert_is_exempt_assert_is_not() {
        let w = ws("fn a() { debug_assert!(true); }\nfn b() { assert!(true); }");
        let a = analyze(&w, &Options::default());
        assert!(!a.can_panic(0));
        assert!(a.can_panic(1));
    }

    #[test]
    fn unwrap_and_expect_are_direct_sites() {
        let w = ws("fn a(x: Option<u8>) -> u8 { x.unwrap() }\nfn b(x: Option<u8>) -> u8 { x.expect(\"set\") }");
        let a = analyze(&w, &Options::default());
        assert!(matches!(
            a.direct[0],
            Some(DirectSite {
                kind: PanicKind::Method(_),
                ..
            })
        ));
        assert!(a.can_panic(1));
    }

    #[test]
    fn slice_index_is_opt_in() {
        let w = ws("fn a(v: &[u8], i: usize) -> u8 { v[i] }");
        let strict = Options {
            include_slice_index: true,
            ..Options::default()
        };
        assert!(!analyze(&w, &Options::default()).can_panic(0));
        assert!(analyze(&w, &strict).can_panic(0));
    }

    #[test]
    fn findings_are_gated_on_the_pub_surface() {
        let w = ws(
            "fn helper() { panic!(\"x\") }\npub fn try_make() { helper() }\npub fn other_pub() { helper() }\nfn try_private() { helper() }",
        );
        let (diags, counts) = findings(&w, &Options::default());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("try_make"));
        assert!(diags[0].message.contains("->"), "witness chain present");
        assert_eq!(counts.get("crates/x/src/lib.rs"), Some(&1));
    }
}
