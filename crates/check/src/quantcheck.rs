//! Quantization / spike-coding sanity: the device's bit-width knobs must
//! compose — `data_bits` splits into `cell_bits` segment groups (Fig. 14),
//! the spike driver injects one time slot per data bit (Fig. 9a, at most
//! 32), the functional quantizer models 1..=24-bit resolutions, and the
//! configured accumulator must hold at least one full-scale partial
//! product (the network-independent floor of the PL042 range check —
//! `absint` tightens it per layer with the real matrix geometry).

use crate::diag::{self, Diagnostic};
use pipelayer::PipeLayerConfig;
use pipelayer_quant::{accumulator_bits_worst_case, Quantizer};

/// Maximum spike-train slots the Fig. 9(a) driver supports
/// (`SpikeTrain::encode` in `pipelayer-reram`).
pub const MAX_SPIKE_SLOTS: u8 = 32;

/// Checks the bit-width configuration in `cfg.params`.
pub fn check(cfg: &PipeLayerConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let cell = cfg.params.cell_bits;
    let data = cfg.params.data_bits;

    if cell == 0 || data == 0 || !data.is_multiple_of(cell) {
        diags.push(Diagnostic::error(
            diag::QUANT_BITS_MISALIGNED,
            "config.params",
            format!("data_bits = {data} does not split into {cell}-bit cell segment groups"),
            "Fig. 14 decomposes each word into data_bits/cell_bits segment groups; \
             data_bits must be a positive multiple of cell_bits (default 16 = 4 x 4)",
        ));
    }
    if data > MAX_SPIKE_SLOTS {
        diags.push(Diagnostic::error(
            diag::QUANT_SPIKE_OVERFLOW,
            "config.params",
            format!("data_bits = {data} exceeds the {MAX_SPIKE_SLOTS}-slot spike-train limit"),
            "the Fig. 9(a) driver injects one LSBF time slot per data bit; \
             one array-read phase cannot exceed 32 slots",
        ));
    } else if data > 0 && Quantizer::try_new(data).is_err() {
        diags.push(Diagnostic::warning(
            diag::QUANT_UNSUPPORTED_RESOLUTION,
            "config.params",
            format!("data_bits = {data} is outside the functional quantizer's 1..=24-bit range"),
            "timing/energy models still apply, but the functional datapath \
             (quantize-dequantize, Fig. 13 studies) cannot model this resolution",
        ));
    }

    // Network-independent accumulator floor: one qmax x qmax partial
    // product must fit, or every non-trivial dot product overflows.
    let acc = u32::from(cfg.datapath.accumulator_bits);
    if data > 0 && Quantizer::try_new(data).is_ok() {
        let floor = accumulator_bits_worst_case(1, data, data);
        if acc < floor {
            diags.push(Diagnostic::error(
                diag::RANGE_ACC_TOO_NARROW,
                "config.datapath",
                format!(
                    "accumulator_bits = {acc} cannot hold even a single {data}-bit \u{d7} \
                     {data}-bit product ({floor} bits)"
                ),
                "widen datapath.accumulator_bits to at least the single-product width; \
                 the per-layer PL042 check then bounds the full dot products",
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn with_bits(cell: u8, data: u8) -> PipeLayerConfig {
        let mut cfg = PipeLayerConfig::default();
        cfg.params.cell_bits = cell;
        cfg.params.data_bits = data;
        cfg
    }

    #[test]
    fn defaults_are_clean() {
        assert!(check(&PipeLayerConfig::default()).is_empty());
    }

    #[test]
    fn misaligned_bits_are_rejected() {
        for (cell, data) in [(0u8, 16u8), (4, 0), (5, 16), (3, 16)] {
            let diags = check(&with_bits(cell, data));
            assert!(
                diags.iter().any(|d| d.code == diag::QUANT_BITS_MISALIGNED),
                "cell={cell} data={data}: {diags:?}"
            );
        }
    }

    #[test]
    fn spike_overflow_is_an_error() {
        let diags = check(&with_bits(4, 40));
        assert!(diags
            .iter()
            .any(|d| d.code == diag::QUANT_SPIKE_OVERFLOW && d.severity == Severity::Error));
    }

    #[test]
    fn accumulator_below_single_product_floor_is_an_error() {
        let mut cfg = PipeLayerConfig::default();
        cfg.datapath.accumulator_bits = 16; // one 16x16-bit product needs 31
        let diags = check(&cfg);
        assert!(
            diags
                .iter()
                .any(|d| d.code == diag::RANGE_ACC_TOO_NARROW && d.severity == Severity::Error),
            "{diags:?}"
        );
        // At the floor itself the check is quiet (the per-layer pass takes over).
        cfg.datapath.accumulator_bits = 31;
        assert!(check(&cfg).is_empty());
    }

    #[test]
    fn beyond_quantizer_range_is_a_warning() {
        // 28 = 7 x 4-bit groups: physically mappable, spike-encodable, but
        // past the functional quantizer's 24-bit ceiling.
        let diags = check(&with_bits(4, 28));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, diag::QUANT_UNSUPPORTED_RESOLUTION);
        assert_eq!(diags[0].severity, Severity::Warning);
    }
}
