//! Total (panic-free) shape inference over a [`NetSpec`] layer graph.
//!
//! [`NetSpec::resolve`] asserts on malformed geometry deep inside
//! `conv_output_len`; this pass re-derives the same conv/pool/fc/flatten
//! arithmetic defensively and reports every violation as a diagnostic, so a
//! bad workload is rejected before any tensor is allocated.

use crate::diag::{self, Diagnostic};
use pipelayer_nn::spec::{LayerSpec, NetSpec};

/// Geometry of one weighted layer, as inferred by the checker (the subset
/// of `ResolvedLayer` the downstream passes need).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferredLayer {
    /// `"convKxC"` or `"ipM-N"`, matching `ResolvedLayer::name`.
    pub name: String,
    /// `true` for convolution layers.
    pub is_conv: bool,
    /// Input `(C, H, W)`; `(n_in, 1, 1)` for FC.
    pub in_shape: (usize, usize, usize),
    /// Pre-pool output `(C, H, W)`.
    pub out_shape: (usize, usize, usize),
    /// Shape after the folded pooling stage.
    pub post_pool_shape: (usize, usize, usize),
    /// Mapped kernel-matrix rows (`K·K·C_in + 1` or `n_in + 1`).
    pub matrix_rows: usize,
    /// Mapped kernel-matrix columns (`C_out` or `n_out`).
    pub matrix_cols: usize,
    /// Kernel-window positions per image (1 for FC).
    pub window_positions: usize,
}

/// Result of shape inference: the inferred weighted layers (valid only if
/// no error diagnostic was produced) plus everything found along the way.
#[derive(Debug, Clone, Default)]
pub struct ShapeReport {
    /// Weighted layers inferred so far (stops at the first fatal layer).
    pub layers: Vec<InferredLayer>,
    /// Findings, in layer order.
    pub diags: Vec<Diagnostic>,
}

impl ShapeReport {
    /// `true` if inference completed without error-severity findings.
    pub fn is_clean(&self) -> bool {
        !diag::has_errors(&self.diags)
    }
}

/// Guarded version of `conv_output_len`: `None` when the window does not
/// fit or the stride is zero.
fn output_len(input: usize, k: usize, stride: usize, pad: usize) -> Option<usize> {
    if stride == 0 || k == 0 || input + 2 * pad < k {
        return None;
    }
    Some((input + 2 * pad - k) / stride + 1)
}

/// Runs shape inference over the whole layer graph.
///
/// Inference walks layers in order; a layer whose output geometry cannot be
/// derived stops the walk (everything downstream would be guesswork), but
/// every violation up to that point is reported.
pub fn infer(net: &NetSpec) -> ShapeReport {
    let mut report = ShapeReport::default();
    let (c0, h0, w0) = net.input;
    if c0 == 0 || h0 == 0 || w0 == 0 {
        report.diags.push(Diagnostic::error(
            diag::SHAPE_EMPTY_INPUT,
            format!("{}: input", net.name),
            format!("input shape ({c0}, {h0}, {w0}) has a zero dimension"),
            "every input dimension (channels, height, width) must be positive",
        ));
        return report;
    }

    let mut shape = net.input;
    let mut weighted_seen = 0usize;
    for (idx, spec) in net.layers.iter().enumerate() {
        let loc = |name: &str| format!("{}: layer {idx} ({name})", net.name);
        match *spec {
            LayerSpec::Conv {
                k,
                c_out,
                stride,
                pad,
            } => {
                let name = format!("conv{k}x{c_out}");
                let (c_in, h, w) = shape;
                if k == 0 || stride == 0 {
                    report.diags.push(Diagnostic::error(
                        diag::SHAPE_ZERO_KERNEL_OR_STRIDE,
                        loc(&name),
                        format!("kernel size {k} / stride {stride} must both be positive"),
                        "use k >= 1 and stride >= 1",
                    ));
                    return report;
                }
                if c_out == 0 {
                    report.diags.push(Diagnostic::error(
                        diag::SHAPE_ZERO_OUTPUTS,
                        loc(&name),
                        "convolution with zero output channels".to_string(),
                        "set c_out >= 1",
                    ));
                    return report;
                }
                let (Some(ho), Some(wo)) =
                    (output_len(h, k, stride, pad), output_len(w, k, stride, pad))
                else {
                    report.diags.push(Diagnostic::error(
                        diag::SHAPE_WINDOW_TOO_BIG,
                        loc(&name),
                        format!(
                            "window {k}\u{d7}{k} (pad {pad}) does not fit the {h}\u{d7}{w} input"
                        ),
                        "shrink the kernel, add padding, or fix the upstream layer's output shape",
                    ));
                    return report;
                };
                report.layers.push(InferredLayer {
                    name,
                    is_conv: true,
                    in_shape: shape,
                    out_shape: (c_out, ho, wo),
                    post_pool_shape: (c_out, ho, wo),
                    matrix_rows: k * k * c_in + 1,
                    matrix_cols: c_out,
                    window_positions: ho * wo,
                });
                weighted_seen += 1;
                shape = (c_out, ho, wo);
            }
            LayerSpec::Pool { k, stride, .. } => {
                let name = format!("pool{k}s{stride}");
                if weighted_seen == 0 {
                    report.diags.push(Diagnostic::error(
                        diag::SHAPE_LEADING_POOL,
                        loc(&name),
                        "pooling precedes every weighted layer".to_string(),
                        "pooling is folded into the preceding weighted layer (Sec. 4.2.3); \
                         put a conv or fc layer first",
                    ));
                    return report;
                }
                if k == 0 || stride == 0 {
                    report.diags.push(Diagnostic::error(
                        diag::SHAPE_ZERO_KERNEL_OR_STRIDE,
                        loc(&name),
                        format!("pool window {k} / stride {stride} must both be positive"),
                        "use k >= 1 and stride >= 1",
                    ));
                    return report;
                }
                let (c, h, w) = shape;
                let (Some(ho), Some(wo)) =
                    (output_len(h, k, stride, 0), output_len(w, k, stride, 0))
                else {
                    report.diags.push(Diagnostic::error(
                        diag::SHAPE_WINDOW_TOO_BIG,
                        loc(&name),
                        format!("pool window {k}\u{d7}{k} does not fit the {h}\u{d7}{w} input"),
                        "shrink the pool window or fix the upstream layer's output shape",
                    ));
                    return report;
                };
                if let Some(prev) = report.layers.last_mut() {
                    prev.post_pool_shape = (c, ho, wo);
                }
                shape = (c, ho, wo);
            }
            LayerSpec::Fc { n_out } => {
                let (c, h, w) = shape;
                let n_in = c * h * w; // the implicit flatten
                let name = format!("ip{n_in}-{n_out}");
                if n_out == 0 {
                    report.diags.push(Diagnostic::error(
                        diag::SHAPE_ZERO_OUTPUTS,
                        loc(&name),
                        "inner-product layer with zero output neurons".to_string(),
                        "set n_out >= 1",
                    ));
                    return report;
                }
                report.layers.push(InferredLayer {
                    name,
                    is_conv: false,
                    in_shape: (n_in, 1, 1),
                    out_shape: (n_out, 1, 1),
                    post_pool_shape: (n_out, 1, 1),
                    matrix_rows: n_in + 1,
                    matrix_cols: n_out,
                    window_positions: 1,
                });
                weighted_seen += 1;
                shape = (n_out, 1, 1);
            }
        }
    }

    if weighted_seen == 0 {
        report.diags.push(Diagnostic::error(
            diag::SHAPE_NO_WEIGHTED_LAYERS,
            format!("{}: network", net.name),
            "no weighted layers: nothing to map onto crossbars".to_string(),
            "add at least one conv or fc layer",
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_nn::spec::PoolKind;
    use pipelayer_nn::zoo;

    #[test]
    fn agrees_with_resolve_on_the_zoo() {
        for spec in zoo::evaluation_specs() {
            let report = infer(&spec);
            assert!(report.is_clean(), "{}: {:?}", spec.name, report.diags);
            let resolved = spec.resolve();
            assert_eq!(report.layers.len(), resolved.len(), "{}", spec.name);
            for (inf, res) in report.layers.iter().zip(&resolved) {
                assert_eq!(inf.name, res.name);
                assert_eq!(inf.in_shape, res.in_shape, "{}", res.name);
                assert_eq!(inf.out_shape, res.out_shape, "{}", res.name);
                assert_eq!(inf.post_pool_shape, res.post_pool_shape, "{}", res.name);
                assert_eq!(inf.matrix_rows, res.matrix_rows, "{}", res.name);
                assert_eq!(inf.matrix_cols, res.matrix_cols, "{}", res.name);
                assert_eq!(inf.window_positions, res.window_positions, "{}", res.name);
            }
        }
    }

    #[test]
    fn rejects_oversized_window() {
        let spec = NetSpec::new(
            "bad",
            (1, 4, 4),
            vec![LayerSpec::Conv {
                k: 7,
                c_out: 2,
                stride: 1,
                pad: 0,
            }],
        );
        let report = infer(&spec);
        assert_eq!(report.diags.len(), 1);
        assert_eq!(report.diags[0].code, diag::SHAPE_WINDOW_TOO_BIG);
    }

    #[test]
    fn rejects_leading_pool_and_zero_dims() {
        let spec = NetSpec::new(
            "bad",
            (1, 8, 8),
            vec![LayerSpec::Pool {
                k: 2,
                stride: 2,
                kind: PoolKind::Max,
            }],
        );
        assert_eq!(infer(&spec).diags[0].code, diag::SHAPE_LEADING_POOL);

        let spec = NetSpec::new("bad", (0, 8, 8), vec![LayerSpec::Fc { n_out: 4 }]);
        assert_eq!(infer(&spec).diags[0].code, diag::SHAPE_EMPTY_INPUT);

        let spec = NetSpec::new("bad", (1, 8, 8), vec![]);
        assert_eq!(infer(&spec).diags[0].code, diag::SHAPE_NO_WEIGHTED_LAYERS);
    }

    #[test]
    fn rejects_zero_stride_and_zero_outputs() {
        let spec = NetSpec::new(
            "bad",
            (1, 8, 8),
            vec![LayerSpec::Conv {
                k: 3,
                c_out: 4,
                stride: 0,
                pad: 0,
            }],
        );
        assert_eq!(
            infer(&spec).diags[0].code,
            diag::SHAPE_ZERO_KERNEL_OR_STRIDE
        );

        let spec = NetSpec::new("bad", (1, 8, 8), vec![LayerSpec::Fc { n_out: 0 }]);
        assert_eq!(infer(&spec).diags[0].code, diag::SHAPE_ZERO_OUTPUTS);
    }

    #[test]
    fn downstream_mismatch_is_caught_where_it_happens() {
        // Pooling shrinks 8x8 to 2x2; the next conv's 3x3 window no longer
        // fits — exactly the class of bug that used to panic in `tensor`.
        let spec = NetSpec::new(
            "bad",
            (1, 8, 8),
            vec![
                LayerSpec::Conv {
                    k: 3,
                    c_out: 4,
                    stride: 1,
                    pad: 0,
                },
                LayerSpec::Pool {
                    k: 3,
                    stride: 3,
                    kind: PoolKind::Max,
                },
                LayerSpec::Conv {
                    k: 3,
                    c_out: 8,
                    stride: 1,
                    pad: 0,
                },
            ],
        );
        let report = infer(&spec);
        assert_eq!(report.diags.len(), 1);
        assert_eq!(report.diags[0].code, diag::SHAPE_WINDOW_TOO_BIG);
        assert!(report.diags[0].location.contains("layer 2"));
        // The first conv was still inferred.
        assert_eq!(report.layers.len(), 1);
    }
}
