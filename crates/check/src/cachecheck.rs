//! PL061 — cache-coherence check for manually-invalidated derived caches.
//!
//! PR 7 added `Crossbar::plane_cache`: bit-packed conductance planes derived
//! from `cells` + `faults` + `drift` + `noise`, invalidated by hand at every
//! mutation site. One forgotten `self.plane_cache = None` in a future
//! `&mut self` method silently serves stale planes — a value bug no test
//! catches until the exact stale path is exercised.
//!
//! This pass makes the invariant structural. For each configured
//! [`CacheSpec`] `(type, cache field, state fields)` it flags every
//! `&mut self` method of `type` that **writes a state field** (directly or
//! by calling another method of the type that does) yet neither **touches
//! the cache field** nor calls a method that does.
//!
//! Write detection (token-level, over-approximate on purpose — a false
//! positive costs an explicit invalidation, a false negative costs a stale
//! cache):
//! * `self.F = …` assignment (excluding `==`),
//! * `self.F.as_mut(…)` / `self.F.take(…)` / any `&mut self.F`,
//! * `self.F[…]` indexing inside a `&mut self` method.
//!
//! Invalidation = any of the same shapes applied to the cache field
//! (`self.C = …`, `self.C.take()`, `&mut self.C`, `self.C.as_mut(…)`), or a
//! call to a same-type method that invalidates. Findings are
//! error-severity: unlike the line lint there is no allowlist for PL061 —
//! the real `Crossbar` must stay clean.

use crate::callgraph::{FnItem, Recv, Workspace};
use crate::diag::{self, Diagnostic};
use crate::lex::TokKind;
use std::collections::{BTreeMap, BTreeSet};

/// One (type, cache field, state fields) triple to check.
#[derive(Debug, Clone)]
pub struct CacheSpec {
    pub type_name: String,
    pub cache_field: String,
    pub state_fields: Vec<String>,
}

/// The repo's configured caches: `Crossbar.plane_cache` is derived from the
/// cell array, fault map, drift state, noise state, and wear state (an
/// exhausted cell becomes a live stuck-at fault, which changes what an MVM
/// reads). `ReramMatrix` (array_group.rs) holds no cache of its own — its
/// `Crossbar` members self-invalidate — so `Crossbar` is the one triple.
pub fn default_specs() -> Vec<CacheSpec> {
    vec![CacheSpec {
        type_name: "Crossbar".to_string(),
        cache_field: "plane_cache".to_string(),
        state_fields: vec![
            "cells".to_string(),
            "faults".to_string(),
            "drift".to_string(),
            "noise".to_string(),
            "wear".to_string(),
        ],
    }]
}

/// Token-level scan of one method body: does it write any of `fields`
/// through `self.<field>`? Returns the first written field name.
fn writes_field(ws: &Workspace, f: &FnItem, fields: &[String]) -> Option<String> {
    let (lo, hi) = f.body?;
    let file = ws.files.get(f.file)?;
    let text = |k: usize| file.toks.get(k).map(|t| t.text(&file.src)).unwrap_or("");
    let kind = |k: usize| file.toks.get(k).map(|t| t.kind);
    for k in lo..hi {
        // Pattern anchor: `self` `.` <field>.
        if !(kind(k) == Some(TokKind::Ident) && text(k) == "self") {
            continue;
        }
        if text(k + 1) != "." {
            continue;
        }
        let field = text(k + 2);
        if !fields.iter().any(|f| f == field) {
            continue;
        }
        // `&mut self.F` — a mutable borrow of the field.
        let borrowed_mut = k >= 2 && text(k - 1) == "mut" && text(k - 2) == "&";
        if borrowed_mut {
            return Some(field.to_string());
        }
        match text(k + 3) {
            // `self.F = …` but not `self.F == …`.
            "=" if text(k + 4) != "=" => return Some(field.to_string()),
            // `self.F.as_mut(…)` / `self.F.take(…)` / `self.F.replace(…)`.
            "." if matches!(
                text(k + 4),
                "as_mut" | "take" | "replace" | "insert" | "get_or_insert_with"
            ) =>
            {
                return Some(field.to_string());
            }
            // `self.F[…]` — indexing a storage vector in a `&mut self`
            // method is treated as a write (over-approximation).
            "[" if f.mut_self => return Some(field.to_string()),
            _ => {}
        }
    }
    None
}

/// Same-type callees of `f` (through `self.m(…)`, `Self::m(…)`, `Type::m(…)`).
fn same_type_callees(ws: &Workspace, idx: usize, type_name: &str) -> Vec<usize> {
    let Some(f) = ws.fns.get(idx) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for call in &f.calls {
        let targeted = match &call.recv {
            Recv::SelfDot => true,
            Recv::Ty(t) => t == type_name,
            _ => false,
        };
        if targeted {
            out.extend_from_slice(ws.lookup(Some(type_name), &call.name));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Transitive closure of a per-method predicate through same-type calls.
fn closure(
    ws: &Workspace,
    methods: &[usize],
    type_name: &str,
    direct: &BTreeMap<usize, String>,
) -> BTreeMap<usize, String> {
    let mut out: BTreeMap<usize, String> = direct.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for &m in methods {
            if out.contains_key(&m) {
                continue;
            }
            for callee in same_type_callees(ws, m, type_name) {
                if let Some(via) = out.get(&callee) {
                    let label = ws
                        .fns
                        .get(callee)
                        .map(|c| format!("{via} (via {})", c.name))
                        .unwrap_or_else(|| via.clone());
                    out.insert(m, label);
                    changed = true;
                    break;
                }
            }
        }
    }
    out
}

/// Runs the pass over every configured spec. Error-severity findings; an
/// empty result means every mutating method of every configured type
/// invalidates its cache.
pub fn check(ws: &Workspace, specs: &[CacheSpec]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for spec in specs {
        let methods: Vec<usize> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.self_ty.as_deref() == Some(spec.type_name.as_str()))
            .map(|(i, _)| i)
            .collect();

        let cache_fields = [spec.cache_field.clone()];
        let mut writes_direct: BTreeMap<usize, String> = BTreeMap::new();
        let mut invalidates_direct: BTreeMap<usize, String> = BTreeMap::new();
        for &m in &methods {
            let Some(f) = ws.fns.get(m) else { continue };
            if let Some(field) = writes_field(ws, f, &spec.state_fields) {
                writes_direct.insert(m, field);
            }
            if writes_field(ws, f, &cache_fields).is_some() {
                invalidates_direct.insert(m, spec.cache_field.clone());
            }
        }
        let writes = closure(ws, &methods, &spec.type_name, &writes_direct);
        let invalidates = closure(ws, &methods, &spec.type_name, &invalidates_direct);

        let flagged: BTreeSet<usize> = methods
            .iter()
            .copied()
            .filter(|m| {
                ws.fns.get(*m).is_some_and(|f| f.mut_self)
                    && writes.contains_key(m)
                    && !invalidates.contains_key(m)
            })
            .collect();
        for m in flagged {
            let Some(f) = ws.fns.get(m) else { continue };
            let field = writes.get(&m).cloned().unwrap_or_default();
            diags.push(Diagnostic::error(
                diag::SEM_CACHE_INCOHERENT,
                ws.location(f),
                format!(
                    "`{}` writes state field `{field}` but never invalidates `{}.{}`",
                    f.qualified(),
                    spec.type_name,
                    spec.cache_field
                ),
                format!(
                    "set `self.{} = None` (or call an invalidating method) before returning, \
                     or the cached planes go stale",
                    spec.cache_field
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> Vec<CacheSpec> {
        vec![CacheSpec {
            type_name: "C".to_string(),
            cache_field: "cache".to_string(),
            state_fields: vec!["state".to_string(), "aux".to_string()],
        }]
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::build(vec![("lib.rs".to_string(), src.to_string())]);
        check(&ws, &spec())
    }

    #[test]
    fn missing_invalidation_is_flagged_by_method_name() {
        let diags = run(
            "struct C;\nimpl C {\n pub fn bad(&mut self) { self.state = 1; }\n pub fn good(&mut self) { self.state = 1; self.cache = None; }\n}",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("`C::bad`"),
            "{}",
            diags[0].message
        );
        assert!(diags[0].message.contains("state"));
    }

    #[test]
    fn take_and_as_mut_count_as_invalidation() {
        let diags = run(
            "struct C;\nimpl C {\n fn a(&mut self) { self.state = 1; self.cache.take(); }\n fn b(&mut self) { self.aux.as_mut(); let c = self.cache.as_mut(); }\n}",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn transitive_writes_and_invalidations_propagate() {
        // `outer` writes via `inner_write` and invalidates via `inner_inval`;
        // `broken` writes transitively but never invalidates.
        let diags = run(
            "struct C;\nimpl C {\n fn inner_write(&mut self) { self.state = 1; self.cache = None; }\n fn inner_inval(&mut self) { self.cache = None; }\n fn outer(&mut self) { self.inner_write(); }\n fn write_only(&mut self) { self.state = 2; }\n fn broken(&mut self) { self.write_only(); }\n}",
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("`C::write_only`")));
        assert!(diags.iter().any(|d| d.message.contains("`C::broken`")));
    }

    #[test]
    fn immutable_methods_and_other_types_are_ignored() {
        let diags = run(
            "struct C;\nimpl C { fn read(&self) -> u8 { self.state } }\nstruct D;\nimpl D { fn m(&mut self) { self.state = 1; } }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn indexing_a_state_vector_counts_as_a_write() {
        let diags =
            run("struct C;\nimpl C { fn m(&mut self, i: usize) { self.state[i].poke(); } }");
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn conditional_invalidation_counts() {
        let diags = run(
            "struct C;\nimpl C { fn m(&mut self) { self.state = 1; if hot() { self.cache = None; } } }\nfn hot() -> bool { true }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
