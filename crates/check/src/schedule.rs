//! Symbolic execution of the training pipeline schedule (Sec. 3.3, Fig. 6).
//!
//! No tensors move: the checker replays the exact event schedule of Fig. 3 —
//! forward stages at `T_{i+l}`, the output error at `T_{i+L+1}`, backward
//! stages walking down one layer per cycle — as pure `(tag, cycle)` dataflow
//! through [`CircularBuffer`]s, one per inter-layer `d` buffer (user-supplied
//! depth) and one duplicated-depth-1 buffer per `δ`. A read that misses its
//! tag is a stale-read/WAR hazard; the paper's depth `2(L−l)+1` is *proven*
//! hazard-free by exhaustion over the simulated window, and any undersized
//! depth produces a [`diag::SCHED_STALE_READ`] pinned to the first offending
//! (image, cycle) pair.

use crate::diag::{self, Diagnostic};
use pipelayer::buffers::CircularBuffer;
use std::collections::BTreeMap;

/// The paper's buffer-depth vector: entry `l` (0-based) is `2(L−1−l)+1`,
/// i.e. `2(L−l)+1` for the 1-based layer index of Sec. 3.3.
pub fn paper_depths(l: usize) -> Vec<usize> {
    (0..l).map(|idx| 2 * (l - 1 - idx) + 1).collect()
}

/// Outcome of one symbolic run, before diagnostic rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BufferStats {
    stale_reads: u64,
    first_stale: Option<(u64, u64)>, // (image tag, cycle)
    same_cycle: bool,
}

/// Symbolically executes `batches` training batches of a pipeline with `l`
/// weighted layers and batch size `b`, with per-layer `d`-buffer `depths`
/// (index 0 = the buffer after layer 1). Returns one diagnostic per finding:
///
/// * [`diag::SCHED_DEPTH_LEN`] / [`diag::SCHED_ZERO_DEPTH`] — malformed
///   depth vector (zero-depth buffers are clamped to 1 so the remaining
///   buffers are still checked);
/// * [`diag::SCHED_STALE_READ`] — a read hit overwritten data (one
///   diagnostic per buffer, with the violation count and first offender);
/// * [`diag::SCHED_SAME_CYCLE`] (info) — buffers needing duplication;
/// * [`diag::SCHED_OVERSIZED`] (warning) — depth beyond `2(L−l)+1`.
pub fn check_training(l: usize, b: usize, depths: &[usize], batches: usize) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if l == 0 || b == 0 || batches == 0 {
        diags.push(Diagnostic::error(
            diag::SCHED_DEPTH_LEN,
            "schedule",
            format!("degenerate pipeline: L={l}, B={b}, batches={batches}"),
            "layers, batch size and batch count must all be positive",
        ));
        return diags;
    }
    if depths.len() != l {
        diags.push(Diagnostic::error(
            diag::SCHED_DEPTH_LEN,
            "schedule",
            format!(
                "depth vector has {} entries for {l} weighted layers",
                depths.len()
            ),
            "supply one inter-layer buffer depth per weighted layer",
        ));
        return diags;
    }
    let required = paper_depths(l);
    let mut effective = Vec::with_capacity(l);
    for (idx, (&depth, &req)) in depths.iter().zip(&required).enumerate() {
        if depth == 0 {
            diags.push(Diagnostic::error(
                diag::SCHED_ZERO_DEPTH,
                format!("buffer d{}", idx + 1),
                "zero-depth buffer cannot hold any in-flight output".to_string(),
                format!("the paper's sizing for this buffer is 2(L-l)+1 = {req}"),
            ));
            effective.push(1);
        } else {
            if depth > req {
                diags.push(Diagnostic::warning(
                    diag::SCHED_OVERSIZED,
                    format!("buffer d{}", idx + 1),
                    format!("depth {depth} exceeds the required 2(L-l)+1 = {req}"),
                    "extra slots cost memory subarrays without removing any hazard",
                ));
            }
            effective.push(depth);
        }
    }

    let (stats_d, stats_delta) = run(l, b, &effective, batches);
    for (idx, s) in stats_d.iter().enumerate() {
        if s.stale_reads > 0 {
            let (img, cycle) = s.first_stale.unwrap_or((0, 0));
            diags.push(Diagnostic::error(
                diag::SCHED_STALE_READ,
                format!("buffer d{}", idx + 1),
                format!(
                    "{} stale read(s) at depth {}: image {img}'s output was overwritten \
                     before its \u{2202}W read at cycle {cycle}",
                    s.stale_reads, effective[idx],
                ),
                format!(
                    "the partial-derivative read arrives 2(L-l)+1 = {} cycles after the \
                     write (Fig. 8); deepen the buffer to at least that",
                    required[idx]
                ),
            ));
        }
        // Same-cycle traffic on a multi-slot circular buffer touches two
        // different slots (read-before-write on the wrapped pointer); only
        // the depth-1 buffers collide on one slot and need the paper's
        // duplication.
        if s.same_cycle && effective[idx] == 1 {
            diags.push(Diagnostic::info(
                diag::SCHED_SAME_CYCLE,
                format!("buffer d{}", idx + 1),
                "read and write land on the same slot in the same cycle".to_string(),
                "the paper duplicates this buffer so the read can be served from the twin",
            ));
        }
    }
    for (idx, s) in stats_delta.iter().enumerate() {
        if s.stale_reads > 0 {
            diags.push(Diagnostic::error(
                diag::SCHED_STALE_READ,
                format!("buffer delta{}", idx + 1),
                format!("{} stale read(s) on the \u{3b4} buffer", s.stale_reads),
                "\u{3b4} buffers are single-entry and consumed the cycle after production"
                    .to_string(),
            ));
        }
        if s.same_cycle {
            diags.push(Diagnostic::info(
                diag::SCHED_SAME_CYCLE,
                format!("buffer delta{}", idx + 1),
                "read and write land in the same cycle".to_string(),
                "the paper duplicates this buffer so the read can be served from the twin",
            ));
        }
    }
    diags
}

/// The Fig. 3 event schedule as pure `(tag, cycle)` dataflow; returns the
/// per-buffer stats for the `d` and `δ` buffers.
fn run(
    l: usize,
    b: usize,
    depths: &[usize],
    batches: usize,
) -> (Vec<BufferStats>, Vec<BufferStats>) {
    let (lu, bu) = (l as u64, b as u64);
    // (stage-kind, layer, image): kind 0 = forward writes d_layer,
    // 1 = error (reads d_L, writes δ_L), 2 = backward stage m.
    let mut events: BTreeMap<u64, Vec<(u8, usize, u64)>> = BTreeMap::new();
    for batch in 0..batches as u64 {
        let s = 1 + batch * (2 * lu + bu + 1);
        for i in 0..bu {
            let img = batch * bu + i;
            for layer in 1..=l {
                events
                    .entry(s + i + layer as u64 - 1)
                    .or_default()
                    .push((0, layer, img));
            }
            events.entry(s + i + lu).or_default().push((1, l, img));
            for m in (1..=l).rev() {
                events
                    .entry(s + i + 2 * lu - m as u64 + 1)
                    .or_default()
                    .push((2, m, img));
            }
        }
    }

    let new_stats = || BufferStats {
        stale_reads: 0,
        first_stale: None,
        same_cycle: false,
    };
    let mut d_buf: Vec<CircularBuffer> = depths.iter().map(|&d| CircularBuffer::new(d)).collect();
    let mut delta_buf: Vec<CircularBuffer> = (0..l).map(|_| CircularBuffer::new(1)).collect();
    let mut stats_d: Vec<BufferStats> = (0..l).map(|_| new_stats()).collect();
    let mut stats_delta: Vec<BufferStats> = (0..l).map(|_| new_stats()).collect();

    for (&cycle, evs) in &events {
        // Reads are served against the previous cycle's buffer state; the
        // cycle's writes commit afterwards (the paper's read-before-write).
        let mut reads: Vec<(usize, bool, u64)> = Vec::new(); // (idx, is_d, tag)
        let mut writes: Vec<(usize, bool, u64)> = Vec::new();
        for &(kind, layer, img) in evs {
            match kind {
                0 => {
                    if layer > 1 {
                        reads.push((layer - 2, true, img)); // d_{l-1} feeds A_l
                    }
                    writes.push((layer - 1, true, img));
                }
                1 => {
                    reads.push((l - 1, true, img)); // d_L feeds the error unit
                    writes.push((l - 1, false, img)); // δ_L
                }
                _ => {
                    reads.push((layer - 1, false, img)); // δ_m drives stage B_m
                    if layer > 1 {
                        reads.push((layer - 2, true, img)); // d_{m-1} for ∂W_m
                        writes.push((layer - 2, false, img)); // δ_{m-1}
                    }
                }
            }
        }
        for &(idx, is_d, tag) in &reads {
            let (buf, stats) = if is_d {
                (&mut d_buf[idx], &mut stats_d[idx])
            } else {
                (&mut delta_buf[idx], &mut stats_delta[idx])
            };
            if !buf.read(tag, cycle) {
                stats.stale_reads += 1;
                if stats.first_stale.is_none() {
                    stats.first_stale = Some((tag, cycle));
                }
            }
            if writes.iter().any(|&(wi, wd, _)| wi == idx && wd == is_d) {
                stats.same_cycle = true;
            }
        }
        for &(idx, is_d, tag) in &writes {
            if is_d {
                d_buf[idx].write(tag, cycle);
            } else {
                delta_buf[idx].write(tag, cycle);
            }
        }
    }
    (stats_d, stats_delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn errors(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
        diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    #[test]
    fn paper_depths_match_analysis() {
        let a = pipelayer::analysis::Analysis::new(5, 4);
        let depths = paper_depths(5);
        for layer in 1..=5 {
            assert_eq!(depths[layer - 1], a.buffer_depth(layer));
        }
    }

    #[test]
    fn paper_sizing_is_hazard_free() {
        for l in [1usize, 2, 3, 8] {
            for b in [1usize, 4, 16] {
                let diags = check_training(l, b, &paper_depths(l), 2);
                assert!(errors(&diags).is_empty(), "L={l} B={b}: {diags:?}");
            }
        }
    }

    #[test]
    fn undersized_buffer_is_a_stale_read() {
        // L=4: buffer after layer 1 needs depth 7; depth 6 = 2(L-l) fails.
        let mut depths = paper_depths(4);
        depths[0] -= 1;
        let diags = check_training(4, 8, &depths, 1);
        let errs = errors(&diags);
        assert_eq!(errs.len(), 1, "{diags:?}");
        assert_eq!(errs[0].code, diag::SCHED_STALE_READ);
        assert_eq!(errs[0].location, "buffer d1");
    }

    #[test]
    fn zero_depth_and_length_mismatch_are_rejected() {
        let diags = check_training(3, 4, &[5, 0, 1], 1);
        assert!(diags.iter().any(|d| d.code == diag::SCHED_ZERO_DEPTH));
        let diags = check_training(3, 4, &[5, 3], 1);
        assert_eq!(diags[0].code, diag::SCHED_DEPTH_LEN);
    }

    #[test]
    fn oversized_buffer_is_flagged_not_fatal() {
        let mut depths = paper_depths(3);
        depths[1] += 4;
        let diags = check_training(3, 4, &depths, 1);
        assert!(errors(&diags).is_empty(), "{diags:?}");
        assert!(diags
            .iter()
            .any(|d| d.code == diag::SCHED_OVERSIZED && d.location == "buffer d2"));
    }

    #[test]
    fn duplicated_buffers_surface_as_info() {
        // Sec. 3.3: the same-cycle read/write cases are d_L and the δs.
        let diags = check_training(3, 8, &paper_depths(3), 1);
        let conflicted: Vec<&str> = diags
            .iter()
            .filter(|d| d.code == diag::SCHED_SAME_CYCLE)
            .map(|d| d.location.as_str())
            .collect();
        assert!(conflicted.contains(&"buffer d3"), "{conflicted:?}");
        assert!(conflicted.contains(&"buffer delta2"), "{conflicted:?}");
        assert!(!conflicted.contains(&"buffer d1"), "{conflicted:?}");
    }

    #[test]
    fn agrees_with_the_cycle_accurate_simulator() {
        // The independent PipelineSim and this symbolic checker must agree
        // on hazard presence for uniform slack in -2..=+2.
        for slack in -2i64..=2 {
            let sim = pipelayer::pipeline::PipelineSim::new(4, 8);
            let sim_violations = sim.simulate_training(2, slack, 0).dependency_violations;
            let depths: Vec<usize> = paper_depths(4)
                .iter()
                .map(|&d| ((d as i64 + slack).max(1)) as usize)
                .collect();
            let stale = check_training(4, 8, &depths, 2)
                .iter()
                .filter(|d| d.code == diag::SCHED_STALE_READ)
                .count();
            assert_eq!(
                sim_violations > 0,
                stale > 0,
                "slack {slack}: sim={sim_violations}, check={stale}"
            );
        }
    }
}
