//! # `pipelayer-check` — static verification for PipeLayer workloads
//!
//! Everything PipeLayer's correctness rests on is decidable *before* any
//! tensor moves: layer-graph geometry (Fig. 4), the stall-free inter-layer
//! schedule with its `2(L−l)+1` circular buffers (Sec. 3.3, Fig. 8),
//! crossbar-mapping capacity under replication `G` (Sec. 3.2.3), and the
//! bit-width composition of the spike-coded datapath (Figs. 9/14). This
//! crate decides all of it, reporting structured [`Diagnostic`]s with
//! stable `PL0xx` codes instead of runtime panics.
//!
//! * [`verify`] — the one-call pre-flight check over a [`NetSpec`] +
//!   [`PipeLayerConfig`];
//! * [`verify_with`] — the same with explicit granularity / buffer-depth /
//!   budget overrides (how the `plcheck` binary exposes what-if runs);
//! * [`shape`], [`schedule`], [`mapcheck`], [`quantcheck`] — the individual
//!   passes, usable on their own;
//! * [`absint`] — interval abstract interpretation of the quantized
//!   datapath: per-layer activation/gradient bounds over the actual
//!   quantized weight grids, checked against the datapath's value formats
//!   (PL04x; `plcheck --ranges`).
//!
//! The companion `src-lint` binary is the repo-wide determinism/panic lint
//! gate; it shares nothing with the workload verifier except the crate.
//!
//! ```
//! use pipelayer::PipeLayerConfig;
//! use pipelayer_nn::zoo;
//!
//! let diags = pipelayer_check::verify(&zoo::alexnet(), &PipeLayerConfig::default());
//! assert!(!pipelayer_check::has_errors(&diags));
//! ```

pub mod absint;
pub mod cachecheck;
pub mod callgraph;
pub mod dettaint;
pub mod diag;
pub mod expr;
pub mod lex;
pub mod mapcheck;
pub mod panicreach;
pub mod quantcheck;
pub mod schedule;
pub mod shape;
pub mod units;

pub use diag::{has_errors, render_json, Diagnostic, Severity};

use pipelayer::granularity::{default_granularity, DEFAULT_CONV_XBAR_BUDGET};
use pipelayer::PipeLayerConfig;
use pipelayer_nn::spec::NetSpec;

/// What-if overrides for [`verify_with`]. The default (all `None`) verifies
/// the configuration the accelerator would actually run: Table 5-style
/// granularity and the paper's `2(L−l)+1` buffer depths.
#[derive(Debug, Clone, Default)]
pub struct Overrides {
    /// Per-layer replication factors `G` (default: the budgeted balanced
    /// search of `pipelayer::granularity`).
    pub granularity: Option<Vec<usize>>,
    /// Per-layer inter-layer buffer depths (default: `2(L−l)+1`).
    pub depths: Option<Vec<usize>>,
    /// Crossbar budget for replicated conv arrays (default:
    /// [`DEFAULT_CONV_XBAR_BUDGET`]).
    pub conv_xbar_budget: Option<u64>,
    /// Training batches to execute symbolically (default 2 — enough to
    /// cover the batch drain/refill boundary).
    pub batches: Option<usize>,
}

/// Verifies `net` under `cfg` end to end and returns every finding, most
/// severe first. An empty list (or one with no [`Severity::Error`] entries —
/// see [`has_errors`]) means the workload is safe to run.
pub fn verify(net: &NetSpec, cfg: &PipeLayerConfig) -> Vec<Diagnostic> {
    verify_with(net, cfg, &Overrides::default())
}

/// [`verify`] with explicit [`Overrides`].
///
/// The passes run in dependency order: configuration domain checks, shape
/// inference, then — only if the graph is well-formed — the symbolic
/// schedule, the mapping-capacity check, and the bit-width check. Shape
/// errors suppress the downstream passes (their inputs would be guesswork),
/// config errors do not.
pub fn verify_with(net: &NetSpec, cfg: &PipeLayerConfig, over: &Overrides) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    let cfg_ok = cfg.validate().is_ok();
    if let Err(e) = cfg.validate() {
        diags.push(Diagnostic::error(
            diag::CONFIG_INVALID,
            "config",
            e.to_string(),
            "fix the accelerator configuration before mapping any workload",
        ));
    }

    let shapes = shape::infer(net);
    let shapes_clean = shapes.is_clean();
    diags.extend(shapes.diags);

    if shapes_clean {
        let l = shapes.layers.len();
        let b = cfg.batch_size.max(1);
        let depths = over
            .depths
            .clone()
            .unwrap_or_else(|| schedule::paper_depths(l));
        let batches = over.batches.unwrap_or(2);
        for mut d in schedule::check_training(l, b, &depths, batches) {
            d.location = format!("{}: {}", net.name, d.location);
            diags.push(d);
        }

        let g = over
            .granularity
            .clone()
            .unwrap_or_else(|| default_granularity(&net.resolve()));
        let budget = over.conv_xbar_budget.unwrap_or(DEFAULT_CONV_XBAR_BUDGET);
        for mut d in mapcheck::check(&shapes.layers, &g, cfg, budget) {
            d.location = format!("{}: {}", net.name, d.location);
            diags.push(d);
        }

        // Range analysis needs a valid value-format configuration to check
        // bounds against; with PL050 already reported there is nothing
        // meaningful to compare to.
        if cfg_ok {
            for mut d in absint::analyze(net, cfg).diags {
                d.location = format!("{}: {}", net.name, d.location);
                diags.push(d);
            }
        }
    }

    diags.extend(quantcheck::check(cfg));
    diags.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.code.cmp(b.code)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_nn::zoo;

    #[test]
    fn default_workloads_have_no_errors() {
        let cfg = PipeLayerConfig::default();
        for spec in [zoo::spec_mnist_a(), zoo::alexnet()] {
            let diags = verify(&spec, &cfg);
            assert!(!has_errors(&diags), "{}: {diags:?}", spec.name);
        }
    }

    #[test]
    fn severity_sorts_errors_first() {
        let cfg = PipeLayerConfig::default();
        let mut over = Overrides::default();
        let l = zoo::alexnet().weighted_layers();
        let mut depths = schedule::paper_depths(l);
        depths[0] -= 1; // stale read (error)
        depths[1] += 3; // oversized (warning)
        over.depths = Some(depths);
        let diags = verify_with(&zoo::alexnet(), &cfg, &over);
        assert!(has_errors(&diags));
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].location.starts_with("AlexNet: "));
    }

    #[test]
    fn config_errors_do_not_mask_shape_checks() {
        let spec = NetSpec::new("bad", (0, 4, 4), vec![]);
        let cfg = PipeLayerConfig {
            batch_size: 0,
            ..PipeLayerConfig::default()
        };
        let diags = verify(&spec, &cfg);
        assert!(diags.iter().any(|d| d.code == diag::CONFIG_INVALID));
        assert!(diags.iter().any(|d| d.code == diag::SHAPE_EMPTY_INPUT));
    }
}
