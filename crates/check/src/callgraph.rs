//! Item extraction and an intra-workspace call graph over [`crate::lex`]
//! token streams.
//!
//! The extractor recognises `fn` items (free functions, inherent/trait
//! methods with their `impl`/`trait` self type), records their spans and
//! visibility, skips `#[cfg(test)]` items and modules wholesale, and
//! collects **best-effort, receiver-aware call edges**:
//!
//! * `self.m(…)`            → method `m` of the enclosing impl type,
//! * `Type::m(…)` / `Self::m(…)` → method `m` of `Type`,
//! * `free(…)`              → free functions named `free`,
//! * `expr.m(…)`            → *any* workspace method named `m` (the
//!   receiver's type is unknown without type inference, so this
//!   over-approximates — a may-call edge set),
//! * `name!(…)`             → recorded as a macro site, not a call edge.
//!
//! Soundness caveats (documented, deliberate): calls through function
//! pointers, closures passed as values, trait objects dispatched outside
//! the workspace, and macro-generated code are **not** seen — the graph
//! may *miss* edges. Conversely `expr.m(…)` resolution may *add* edges to
//! same-named methods of unrelated types. Passes built on top (PL060/062)
//! therefore report "may reach" facts and must not claim completeness.

use crate::lex::{self, Tok, TokKind};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.name(…)` — resolved against the enclosing impl type.
    SelfDot,
    /// `Type::name(…)` (with `Self::` already rewritten to the impl type).
    Ty(String),
    /// `name(…)` — a free-function call.
    Plain,
    /// `expr.name(…)` — receiver type unknown; resolves to every method
    /// of that name in the workspace.
    Dot,
    /// `name!(…)` — macro invocation (no call edge; panic macros are
    /// classified by the PL060 pass).
    Macro,
}

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub recv: Recv,
    /// 1-based source line of the callee name.
    pub line: usize,
}

/// One extracted `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name (`mvm_spiked`).
    pub name: String,
    /// Enclosing impl/trait type, if any (`Crossbar`).
    pub self_ty: Option<String>,
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// `pub` without a restriction (`pub(crate)` counts as private API).
    pub is_pub: bool,
    /// First parameter is `&mut self` (possibly with a lifetime).
    pub mut_self: bool,
    /// Token-index range `[lo, hi)` of the body *between* the braces
    /// (empty for bodyless trait declarations).
    pub body: Option<(usize, usize)>,
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// `Type::name` or bare `name`.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub src: String,
    pub toks: Vec<Tok>,
}

/// The extracted workspace: files, functions, and name indexes.
#[derive(Debug, Default)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub fns: Vec<FnItem>,
    /// `(self_ty, name)` → fn indexes (inherent/trait methods).
    by_method: BTreeMap<(String, String), Vec<usize>>,
    /// bare name → fn indexes (methods *and* free functions).
    by_name: BTreeMap<String, Vec<usize>>,
}

const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "let", "mut",
    "ref", "box", "unsafe", "await", "fn", "impl", "where", "dyn", "yield",
];

impl Workspace {
    /// Builds the workspace graph from `(path, source)` pairs.
    pub fn build(inputs: Vec<(String, String)>) -> Self {
        let mut ws = Workspace::default();
        for (path, src) in inputs {
            let toks = lex::lex(&src);
            let file_idx = ws.files.len();
            let mut parser = Parser {
                toks: &toks,
                src: &src,
                i: 0,
                file: file_idx,
                fns: Vec::new(),
            };
            parser.items(None, false);
            let fns = std::mem::take(&mut parser.fns);
            ws.files.push(SourceFile { path, src, toks });
            for f in fns {
                let idx = ws.fns.len();
                if let Some(t) = &f.self_ty {
                    ws.by_method
                        .entry((t.clone(), f.name.clone()))
                        .or_default()
                        .push(idx);
                }
                ws.by_name.entry(f.name.clone()).or_default().push(idx);
                ws.fns.push(f);
            }
        }
        ws
    }

    /// Builds the workspace from every `.rs` file under `root/crates/*/src`
    /// (sorted; the same file set `src-lint` scans).
    pub fn load(root: &Path) -> Result<Self, String> {
        let mut inputs = Vec::new();
        for path in collect_sources(root)? {
            let src = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            inputs.push((rel, src));
        }
        Ok(Self::build(inputs))
    }

    /// Functions with the given bare name, optionally restricted to a type.
    pub fn lookup(&self, self_ty: Option<&str>, name: &str) -> &[usize] {
        match self_ty {
            Some(t) => self
                .by_method
                .get(&(t.to_string(), name.to_string()))
                .map(Vec::as_slice)
                .unwrap_or(&[]),
            None => self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    /// Resolves one call site from `caller` into callee fn indexes.
    pub fn resolve(&self, caller: &FnItem, call: &CallSite) -> Vec<usize> {
        let mut out = match &call.recv {
            Recv::Macro => Vec::new(),
            Recv::SelfDot => {
                let ty = caller.self_ty.as_deref().unwrap_or("");
                let hits = self.lookup(Some(ty), &call.name);
                if hits.is_empty() {
                    self.lookup(None, &call.name).to_vec()
                } else {
                    hits.to_vec()
                }
            }
            Recv::Ty(t) => {
                let hits = self.lookup(Some(t), &call.name);
                if !hits.is_empty() {
                    hits.to_vec()
                } else if t.chars().next().is_some_and(char::is_lowercase) {
                    // `module::free_fn(…)` — resolve like a plain call.
                    self.lookup(None, &call.name)
                        .iter()
                        .copied()
                        .filter(|&i| self.fns[i].self_ty.is_none())
                        .collect()
                } else {
                    // `Vec::new(…)`-style calls on types the workspace does
                    // not define: external, no edge (falling back by name
                    // would wire every `new` to every other `new`).
                    Vec::new()
                }
            }
            Recv::Plain => {
                let all = self.lookup(None, &call.name);
                let free: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].self_ty.is_none())
                    .collect();
                if free.is_empty() {
                    all.to_vec()
                } else {
                    free
                }
            }
            Recv::Dot => self.lookup(None, &call.name).to_vec(),
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Forward adjacency: for each fn, its resolved `(callee, call line)`
    /// edges, deduplicated per callee (first call site wins).
    pub fn edges(&self) -> Vec<Vec<(usize, usize)>> {
        self.fns
            .iter()
            .map(|f| {
                let mut seen = BTreeMap::new();
                for call in &f.calls {
                    for callee in self.resolve(f, call) {
                        seen.entry(callee).or_insert(call.line);
                    }
                }
                seen.into_iter().collect()
            })
            .collect()
    }

    /// `file:line` location string for a function.
    pub fn location(&self, f: &FnItem) -> String {
        let path = self
            .files
            .get(f.file)
            .map(|s| s.path.as_str())
            .unwrap_or("?");
        format!("{path}:{}", f.line)
    }
}

/// All `.rs` files under `root/crates/*/src`, sorted for determinism —
/// shared by `src-lint` and [`Workspace::load`].
pub fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let mut crates: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    let mut files = Vec::new();
    for krate in crates {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---- the item parser -------------------------------------------------------

struct Parser<'a> {
    toks: &'a [Tok],
    src: &'a str,
    i: usize,
    file: usize,
    fns: Vec<FnItem>,
}

impl<'a> Parser<'a> {
    fn tok(&self, at: usize) -> Option<&Tok> {
        self.toks.get(at)
    }

    fn text(&self, at: usize) -> &str {
        self.tok(at).map(|t| t.text(self.src)).unwrap_or("")
    }

    fn is_punct(&self, at: usize, c: char) -> bool {
        self.tok(at)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text(self.src) == c.to_string())
    }

    fn is_ident(&self, at: usize, s: &str) -> bool {
        self.tok(at)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(self.src) == s)
    }

    /// Skips a balanced delimiter run starting at an opener token; returns
    /// the index one past the matching closer (EOF-safe).
    fn skip_balanced(&self, mut at: usize, open: char, close: char) -> usize {
        let mut depth = 0usize;
        while let Some(t) = self.tok(at) {
            if t.kind == TokKind::Punct {
                let s = t.text(self.src);
                if s == open.to_string() {
                    depth += 1;
                } else if s == close.to_string() {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return at + 1;
                    }
                }
            }
            at += 1;
        }
        at
    }

    /// Parses an attribute at `#` (`#[…]` or `#![…]`); returns (next index,
    /// attribute-is-cfg-test).
    fn attribute(&self, mut at: usize) -> (usize, bool) {
        at += 1; // '#'
        if self.is_punct(at, '!') {
            at += 1;
        }
        if !self.is_punct(at, '[') {
            return (at, false);
        }
        let end = self.skip_balanced(at, '[', ']');
        let mut is_cfg_test = false;
        // Look for the token run `cfg ( … test … )` inside the brackets.
        let mut saw_cfg = false;
        for k in at..end {
            if self.is_ident(k, "cfg") {
                saw_cfg = true;
            }
            if saw_cfg && self.is_ident(k, "test") {
                is_cfg_test = true;
            }
        }
        (end, is_cfg_test)
    }

    /// Parses a type path after `impl`/`for`: `a::b::Type<…>`; returns
    /// (next index, last path-segment ident).
    fn type_path(&self, mut at: usize) -> (usize, Option<String>) {
        // Leading `&`, `&mut`, `dyn` etc.
        while self.is_punct(at, '&') || self.is_ident(at, "dyn") || self.is_ident(at, "mut") {
            at += 1;
        }
        let mut last = None;
        loop {
            match self.tok(at) {
                Some(t) if t.kind == TokKind::Ident => {
                    let s = t.text(self.src).to_string();
                    if s != "crate" && s != "super" && s != "self" {
                        last = Some(s);
                    }
                    at += 1;
                }
                _ => break,
            }
            if self.is_punct(at, '<') {
                at = self.skip_angles(at);
            }
            if self.is_punct(at, ':') && self.is_punct(at + 1, ':') {
                at += 2;
            } else {
                break;
            }
        }
        (at, last)
    }

    /// Skips a balanced `<…>` run, tolerating `->` and `>>`.
    fn skip_angles(&self, mut at: usize) -> usize {
        let mut depth = 0usize;
        while let Some(t) = self.tok(at) {
            if t.kind == TokKind::Punct {
                match t.text(self.src) {
                    "<" => depth += 1,
                    ">" => {
                        // `->` never closes a generic argument list.
                        let arrow = at > 0 && self.is_punct(at - 1, '-');
                        if !arrow {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                return at + 1;
                            }
                        }
                    }
                    _ => {}
                }
            }
            at += 1;
        }
        at
    }

    /// Top-level/impl/trait item loop. `self_ty` is the enclosing impl or
    /// trait type; `in_test` marks an enclosing `#[cfg(test)]` scope.
    fn items(&mut self, self_ty: Option<&str>, in_test: bool) {
        let mut pending_test = false;
        let mut pending_pub = false;
        while let Some(t) = self.tok(self.i) {
            match t.kind {
                TokKind::Punct if t.text(self.src) == "#" => {
                    let (next, cfg_test) = self.attribute(self.i);
                    pending_test |= cfg_test;
                    self.i = next;
                }
                TokKind::Punct if t.text(self.src) == "{" => {
                    // A stray block at item level (shouldn't happen): skip.
                    self.i = self.skip_balanced(self.i, '{', '}');
                    pending_test = false;
                    pending_pub = false;
                }
                TokKind::Punct if t.text(self.src) == "}" => {
                    // End of the enclosing block — caller consumed the `{`.
                    return;
                }
                TokKind::Ident => {
                    let kw = t.text(self.src).to_string();
                    match kw.as_str() {
                        "pub" => {
                            // `pub(crate)`/`pub(super)` restrict visibility.
                            if self.is_punct(self.i + 1, '(') {
                                self.i = self.skip_balanced(self.i + 1, '(', ')');
                            } else {
                                pending_pub = true;
                                self.i += 1;
                            }
                        }
                        "impl" => {
                            self.i += 1;
                            if self.is_punct(self.i, '<') {
                                self.i = self.skip_angles(self.i);
                            }
                            let (next, first_ty) = self.type_path(self.i);
                            self.i = next;
                            let ty = if self.is_ident(self.i, "for") {
                                let (next, second) = self.type_path(self.i + 1);
                                self.i = next;
                                second
                            } else {
                                first_ty
                            };
                            // Skip the where clause up to the body.
                            while !self.is_punct(self.i, '{') && self.tok(self.i).is_some() {
                                self.i += 1;
                            }
                            if self.tok(self.i).is_some() {
                                self.i += 1; // '{'
                                self.items(ty.as_deref(), in_test || pending_test);
                                self.i += 1; // '}'
                            }
                            pending_test = false;
                            pending_pub = false;
                        }
                        "trait" => {
                            self.i += 1;
                            let name = match self.tok(self.i) {
                                Some(t) if t.kind == TokKind::Ident => {
                                    Some(t.text(self.src).to_string())
                                }
                                _ => None,
                            };
                            while !self.is_punct(self.i, '{') && self.tok(self.i).is_some() {
                                self.i += 1;
                            }
                            if self.tok(self.i).is_some() {
                                self.i += 1;
                                self.items(name.as_deref(), in_test || pending_test);
                                self.i += 1;
                            }
                            pending_test = false;
                            pending_pub = false;
                        }
                        "mod" => {
                            self.i += 1; // mod
                            self.i += 1; // name
                            if self.is_punct(self.i, '{') {
                                self.i += 1;
                                self.items(None, in_test || pending_test);
                                self.i += 1;
                            } else if self.is_punct(self.i, ';') {
                                self.i += 1;
                            }
                            pending_test = false;
                            pending_pub = false;
                        }
                        "fn" => {
                            self.function(self_ty, in_test || pending_test, pending_pub);
                            pending_test = false;
                            pending_pub = false;
                        }
                        "macro_rules" => {
                            // macro_rules! name { … }
                            while !self.is_punct(self.i, '{') && self.tok(self.i).is_some() {
                                self.i += 1;
                            }
                            self.i = self.skip_balanced(self.i, '{', '}');
                            pending_test = false;
                            pending_pub = false;
                        }
                        "struct" | "enum" | "union" => {
                            // Skip to `;` or a balanced `{…}` body.
                            self.i += 1;
                            while let Some(t) = self.tok(self.i) {
                                if t.kind == TokKind::Punct {
                                    match t.text(self.src) {
                                        ";" => {
                                            self.i += 1;
                                            break;
                                        }
                                        "{" => {
                                            self.i = self.skip_balanced(self.i, '{', '}');
                                            break;
                                        }
                                        "(" => {
                                            self.i = self.skip_balanced(self.i, '(', ')');
                                            continue;
                                        }
                                        _ => {}
                                    }
                                }
                                self.i += 1;
                            }
                            pending_test = false;
                            pending_pub = false;
                        }
                        _ => {
                            // use/const/static/type/extern/unsafe/async …:
                            // advance; `fn` etc. will be hit in turn. Blocks
                            // in const initialisers are skipped balanced.
                            self.i += 1;
                            if self.is_punct(self.i, '{')
                                && matches!(kw.as_str(), "const" | "static")
                            {
                                self.i = self.skip_balanced(self.i, '{', '}');
                            }
                        }
                    }
                }
                _ => self.i += 1,
            }
        }
    }

    /// At the `fn` keyword: extracts the item and its call sites.
    fn function(&mut self, self_ty: Option<&str>, in_test: bool, is_pub: bool) {
        let fn_line = self.tok(self.i).map(|t| t.line).unwrap_or(0);
        self.i += 1; // fn
        let name = match self.tok(self.i) {
            Some(t) if t.kind == TokKind::Ident => t.text(self.src).to_string(),
            _ => return,
        };
        self.i += 1;
        // Signature: skip to the body `{` or a bodyless `;`, balancing
        // parens/brackets/angles so `-> [u8; 3]` and generics don't confuse.
        let mut mut_self = false;
        let mut saw_params = false;
        loop {
            match self.tok(self.i) {
                None => return,
                Some(t) if t.kind == TokKind::Punct => match t.text(self.src) {
                    ";" => {
                        self.i += 1;
                        self.record(
                            name,
                            self_ty,
                            fn_line,
                            is_pub,
                            mut_self,
                            None,
                            in_test,
                            Vec::new(),
                        );
                        return;
                    }
                    "{" => break,
                    "(" => {
                        if !saw_params {
                            saw_params = true;
                            mut_self = self.param_list_is_mut_self(self.i + 1);
                        }
                        self.i = self.skip_balanced(self.i, '(', ')');
                    }
                    "<" => self.i = self.skip_angles(self.i),
                    _ => self.i += 1,
                },
                Some(_) => self.i += 1,
            }
        }
        let body_open = self.i;
        let body_close = self.skip_balanced(self.i, '{', '}');
        self.i = body_close;
        let body = (body_open + 1, body_close.saturating_sub(1));
        let calls = if in_test {
            Vec::new()
        } else {
            self.extract_calls(body.0, body.1, self_ty)
        };
        self.record(
            name,
            self_ty,
            fn_line,
            is_pub,
            mut_self,
            Some(body),
            in_test,
            calls,
        );
    }

    /// `true` if a parameter list starting just after its `(` begins with
    /// `&mut self` (an optional lifetime between `&` and `mut` is fine).
    fn param_list_is_mut_self(&self, mut at: usize) -> bool {
        if !self.is_punct(at, '&') {
            return false;
        }
        at += 1;
        if self.tok(at).is_some_and(|t| t.kind == TokKind::Lifetime) {
            at += 1;
        }
        self.is_ident(at, "mut") && self.is_ident(at + 1, "self")
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        name: String,
        self_ty: Option<&str>,
        line: usize,
        is_pub: bool,
        mut_self: bool,
        body: Option<(usize, usize)>,
        in_test: bool,
        calls: Vec<CallSite>,
    ) {
        if in_test {
            return;
        }
        self.fns.push(FnItem {
            name,
            self_ty: self_ty.map(str::to_string),
            file: self.file,
            line,
            is_pub,
            mut_self,
            body,
            calls,
        });
    }

    /// Scans `[lo, hi)` body tokens for call sites.
    fn extract_calls(&self, lo: usize, hi: usize, self_ty: Option<&str>) -> Vec<CallSite> {
        let mut out = Vec::new();
        let mut k = lo;
        while k < hi {
            let Some(t) = self.tok(k) else { break };
            if t.kind != TokKind::Ident {
                k += 1;
                continue;
            }
            let name = t.text(self.src);
            let line = t.line;
            // After the name, a turbofish `::<…>` may precede the parens.
            let mut after = k + 1;
            let turbofish = self.is_punct(after, ':') && self.is_punct(after + 1, ':') && {
                self.is_punct(after + 2, '<')
            };
            if turbofish {
                after = self.skip_angles(after + 2);
            }
            if self.is_punct(after, '!') {
                // Macro invocation `name!(…)` / `name![…]` / `name!{…}`.
                out.push(CallSite {
                    name: name.to_string(),
                    recv: Recv::Macro,
                    line,
                });
                k = after + 1;
                continue;
            }
            if !self.is_punct(after, '(') {
                k += 1;
                continue;
            }
            if NON_CALL_KEYWORDS.contains(&name) {
                k += 1;
                continue;
            }
            // Receiver classification from the tokens before the name.
            let recv = if k > lo && self.is_punct(k - 1, '.') {
                if k >= 2 && self.is_ident(k - 2, "self") && !(k >= 3 && self.is_punct(k - 3, '.'))
                {
                    Recv::SelfDot
                } else {
                    Recv::Dot
                }
            } else if k >= 2 && self.is_punct(k - 1, ':') && self.is_punct(k - 2, ':') {
                // `seg::name(` — the qualifying segment sits before the `::`
                // (possibly with its own generics, e.g. `Vec::<u8>::new`).
                let mut seg = k.checked_sub(3);
                if let Some(s) = seg {
                    if self.is_punct(s, '>') {
                        // `Type<…>::name(` — walk back over the generics.
                        let mut depth = 0usize;
                        let mut j = s;
                        loop {
                            if self.is_punct(j, '>') {
                                depth += 1;
                            } else if self.is_punct(j, '<') {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            match j.checked_sub(1) {
                                Some(n) => j = n,
                                None => break,
                            }
                        }
                        seg = j.checked_sub(1);
                    }
                }
                match seg {
                    Some(s) if self.tok(s).is_some_and(|t| t.kind == TokKind::Ident) => {
                        let seg_name = self.text(s);
                        if seg_name == "Self" {
                            match self_ty {
                                Some(t) => Recv::Ty(t.to_string()),
                                None => Recv::Plain,
                            }
                        } else {
                            Recv::Ty(seg_name.to_string())
                        }
                    }
                    _ => Recv::Plain,
                }
            } else {
                Recv::Plain
            };
            out.push(CallSite {
                name: name.to_string(),
                recv,
                line,
            });
            k = after + 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::build(vec![("lib.rs".to_string(), src.to_string())])
    }

    #[test]
    fn extracts_free_and_method_items() {
        let w = ws("pub fn a() {}\nstruct S;\nimpl S { pub fn m(&self) {} fn p(&self) {} }");
        let names: Vec<String> = w.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["a", "S::m", "S::p"]);
        assert!(w.fns[0].is_pub && w.fns[1].is_pub && !w.fns[2].is_pub);
    }

    #[test]
    fn trait_impls_resolve_to_the_for_type() {
        let w = ws("struct S;\nimpl Clone for S { fn clone(&self) -> S { S } }");
        assert_eq!(w.fns[0].qualified(), "S::clone");
    }

    #[test]
    fn cfg_test_items_are_excluded() {
        let w = ws(
            "fn real() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n  #[test]\n  fn t() {}\n}\n#[cfg(test)]\nfn gated() {}\nfn real2() {}",
        );
        let names: Vec<&str> = w.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real", "real2"]);
    }

    #[test]
    fn call_sites_classify_receivers() {
        let w = ws(
            "struct S;\nimpl S {\n fn a(&self) { self.b(); helper(); S::c(); other.d(); vec![1]; }\n fn b(&self) {}\n fn c() {}\n}\nfn helper() {}\nfn d() {}",
        );
        let a = &w.fns[0];
        let kinds: Vec<(&str, &Recv)> =
            a.calls.iter().map(|c| (c.name.as_str(), &c.recv)).collect();
        assert!(kinds.contains(&("b", &Recv::SelfDot)));
        assert!(kinds.contains(&("helper", &Recv::Plain)));
        assert!(kinds.contains(&("c", &Recv::Ty("S".to_string()))));
        assert!(kinds.contains(&("d", &Recv::Dot)));
        assert!(kinds.contains(&("vec", &Recv::Macro)));
    }

    #[test]
    fn edges_resolve_self_type_and_fall_back_by_name() {
        let w = ws(
            "struct S;\nimpl S {\n fn a(&self) { self.b(); x.b(); }\n fn b(&self) {}\n}\nstruct T;\nimpl T { fn b(&self) {} }",
        );
        let edges = w.edges();
        // a → S::b (self), plus both S::b and T::b through the dot call.
        let a_edges: Vec<usize> = edges[0].iter().map(|&(c, _)| c).collect();
        assert!(a_edges.contains(&1), "self.b resolves to S::b");
        assert!(a_edges.contains(&2), "x.b may-resolves to T::b");
    }

    #[test]
    fn self_qualified_calls_resolve_to_impl_type() {
        let w = ws(
            "struct S;\nimpl S {\n fn new() -> Self { Self::try_new() }\n fn try_new() -> Self { S }\n}",
        );
        let edges = w.edges();
        assert_eq!(edges[0], vec![(1, 3)]);
    }

    #[test]
    fn bodyless_trait_methods_are_recorded() {
        let w = ws("trait T { fn must(&self); fn with_default(&self) { self.must(); } }");
        assert_eq!(w.fns[0].qualified(), "T::must");
        assert!(w.fns[0].body.is_none());
        let edges = w.edges();
        assert_eq!(edges[1].len(), 1);
    }

    #[test]
    fn strings_and_comments_do_not_produce_calls() {
        let w = ws("fn a() { let s = \"self.bad() call()\"; /* other() */ }");
        assert!(w.fns[0].calls.is_empty());
    }

    #[test]
    fn mut_self_receivers_are_detected() {
        let w = ws(
            "struct S;\nimpl S {\n fn a(&mut self) {}\n fn b(&self) {}\n fn c(self) {}\n fn d<'a>(&'a mut self) {}\n fn e(x: &mut Self) {}\n}",
        );
        let flags: Vec<(String, bool)> =
            w.fns.iter().map(|f| (f.name.clone(), f.mut_self)).collect();
        assert_eq!(
            flags,
            vec![
                ("a".to_string(), true),
                ("b".to_string(), false),
                ("c".to_string(), false),
                ("d".to_string(), true),
                ("e".to_string(), false),
            ]
        );
    }

    #[test]
    fn pub_crate_is_not_public_api() {
        let w = ws("pub(crate) fn a() {}\npub fn b() {}");
        assert!(!w.fns[0].is_pub);
        assert!(w.fns[1].is_pub);
    }
}
