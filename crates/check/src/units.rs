//! PL070–PL072 — dimensional analysis of the timing/energy/endurance model.
//!
//! The paper's headline numbers (42.45× speedup, 7.17× energy saving) are
//! computed by `crates/core` arithmetic whose physical units live only in
//! identifier suffixes (`cycle_ns`, `read_energy_pj`, `scrub_uj_per_image`)
//! and hand-written powers of ten (`* 1e-12` for pJ→J). Nothing in the type
//! system checks any of it. This pass does, over the expression trees of
//! [`crate::expr`]:
//!
//! * **Unit domain** — a vector of exponents over the six base dimensions
//!   the model uses (seconds, joules, images, bits, spikes, cycles) plus a
//!   decimal **scale**: `Unit::Known(d, Scale::Pow(p))` means *value ×
//!   10^p is the SI quantity*, so `ns` is `(time, −9)` and `pJ` is
//!   `(energy, −12)`. Scales are tracked through multiplication, so a
//!   pJ→J conversion missing its `1e-12` is caught, not just ns+J.
//! * **Seeding** — units come from identifier-suffix conventions
//!   ([`suffix_unit`]: trailing `_ns`/`_pj`/`_per_image`… segments) and a
//!   small declarative table ([`NAME_UNITS`]) for the core model names
//!   whose suffix alone under-specifies them (`cycle_ns` is ns *per
//!   cycle*, `read_energy_pj` is pJ *per spike*).
//! * **Propagation** — through let-bindings within a body and via
//!   return-unit inference across the [`crate::callgraph`] call graph,
//!   iterated to a fixed point.
//! * **Literals** — a bare numeric literal is [`Unit::Lit`]: it adopts the
//!   unit of whatever it meets (`x_ns + 1.0` is fine). The one exception
//!   is a power of ten written in e-notation (`1e-12`, `1e9`): multiplying
//!   by `10^k` *shifts the scale* by −k — that is what a unit conversion
//!   is — while plain magnitudes (`100.0`, `86_400.0`) do not.
//!
//! Diagnostics:
//!
//! * **PL070** — mixed units meet at `+`, `-`, `%`, a comparison, an
//!   assignment, or `min`/`max`/`clamp`: different dimensions, or the same
//!   dimension at different scales (a missing conversion factor).
//! * **PL071** — a let-binding's or function's suffix-declared unit
//!   disagrees with the unit its body/initializer actually computes.
//! * **PL072** — a dimensioned value flows into a bench-JSON/report sink
//!   (struct-literal field or `format!`-family JSON key in the configured
//!   sink files) whose field name carries no — or the wrong — unit suffix.
//!
//! Soundness limits, same contract as the other semantic passes: the pass
//! may **miss** (anything that evaluates to [`Unit::Unknown`] — opaque
//! expressions, un-suffixed names, unresolved calls — silences downstream
//! checks) and may **add** only where naming lies (a variable suffixed
//! `_ns` that deliberately holds joules will be flagged; rename it or
//! allowlist the site). "No finding" is not a proof of unit-soundness.

use crate::callgraph::{CallSite, FnItem, Recv, Workspace};
use crate::diag::{self, Diagnostic};
use crate::expr::{self, Expr, ExprKind, Stmt};
use std::collections::BTreeMap;

// ---- the unit domain --------------------------------------------------------

/// Number of base dimensions tracked.
pub const NDIMS: usize = 6;
const TIME: usize = 0;
const ENERGY: usize = 1;
const IMAGES: usize = 2;
const BITS: usize = 3;
const SPIKES: usize = 4;
const CYCLES: usize = 5;

/// Exponent vector over (time, energy, images, bits, spikes, cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim(pub [i8; NDIMS]);

impl Dim {
    /// The dimensionless vector.
    pub const NONE: Dim = Dim([0; NDIMS]);

    fn base(i: usize) -> Dim {
        let mut d = [0i8; NDIMS];
        if let Some(slot) = d.get_mut(i) {
            *slot = 1;
        }
        Dim(d)
    }

    fn mul(self, o: Dim) -> Dim {
        let mut d = [0i8; NDIMS];
        for (x, (&a, &b)) in d.iter_mut().zip(self.0.iter().zip(o.0.iter())) {
            *x = a.saturating_add(b);
        }
        Dim(d)
    }

    fn recip(self) -> Dim {
        let mut d = [0i8; NDIMS];
        for (x, &a) in d.iter_mut().zip(self.0.iter()) {
            *x = a.saturating_neg();
        }
        Dim(d)
    }

    fn div(self, o: Dim) -> Dim {
        self.mul(o.recip())
    }

    /// `true` if every exponent is zero.
    pub fn is_none(self) -> bool {
        self == Dim::NONE
    }
}

/// Decimal scale: `Pow(p)` means value × 10^p is the SI quantity. `Any`
/// marks quantities whose conversion factor is not a power of ten (bytes
/// vs bits) — dimension checks still apply, scale checks are suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Pow(i32),
    Any,
}

impl Scale {
    fn mul(self, o: Scale) -> Scale {
        match (self, o) {
            (Scale::Pow(a), Scale::Pow(b)) => Scale::Pow(a.saturating_add(b)),
            _ => Scale::Any,
        }
    }

    fn recip(self) -> Scale {
        match self {
            Scale::Pow(a) => Scale::Pow(a.saturating_neg()),
            Scale::Any => Scale::Any,
        }
    }
}

/// The inferred unit of an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// No information — absorbs everything, suppresses all checks.
    Unknown,
    /// A bare numeric literal: adopts the unit of whatever it meets.
    Lit,
    /// A known dimension vector at a known (or `Any`) decimal scale.
    Known(Dim, Scale),
}

impl Unit {
    fn known(i: usize, p: i32) -> Unit {
        Unit::Known(Dim::base(i), Scale::Pow(p))
    }

    /// Product of two units (for `*`). `Lit` acts as dimensionless at 10^0.
    fn mul(self, o: Unit) -> Unit {
        match (self, o) {
            (Unit::Unknown, _) | (_, Unit::Unknown) => Unit::Unknown,
            (Unit::Lit, Unit::Lit) => Unit::Lit,
            (Unit::Lit, u) | (u, Unit::Lit) => u,
            (Unit::Known(d1, s1), Unit::Known(d2, s2)) => Unit::Known(d1.mul(d2), s1.mul(s2)),
        }
    }

    /// Quotient (for `/`).
    fn div(self, o: Unit) -> Unit {
        self.mul(o.recip())
    }

    fn recip(self) -> Unit {
        match self {
            Unit::Unknown => Unit::Unknown,
            Unit::Lit => Unit::Lit,
            Unit::Known(d, s) => Unit::Known(d.recip(), s.recip()),
        }
    }

    /// Shifts the scale by `-k` — the effect of multiplying the *value* by
    /// the conversion factor `10^k` (`x_ns * 1e-9` is seconds).
    fn shift(self, k: i32) -> Unit {
        match self {
            Unit::Known(d, Scale::Pow(p)) => Unit::Known(d, Scale::Pow(p.saturating_sub(k))),
            u => u,
        }
    }

    fn is_known(self) -> bool {
        matches!(self, Unit::Known(..))
    }

    /// `true` if the unit carries a nontrivial dimension (time, energy, …).
    pub fn is_dimensioned(self) -> bool {
        matches!(self, Unit::Known(d, _) if !d.is_none())
    }
}

/// How two `Known` units can disagree under an additive operator.
enum Clash {
    /// Dimensions compatible, scales compatible.
    None(Unit),
    /// Different dimension vectors (ns + J).
    Dims,
    /// Same dimensions, decimal scales differ by 10^k (pJ + J).
    Scales(i32),
}

/// Unifies two units under an additive operator (`+`, `-`, `%`, compare,
/// assign, `min`/`max`/`clamp`).
fn unify(l: Unit, r: Unit) -> Clash {
    match (l, r) {
        (Unit::Unknown, u) | (u, Unit::Unknown) => Clash::None(u),
        (Unit::Lit, u) | (u, Unit::Lit) => Clash::None(u),
        (Unit::Known(d1, s1), Unit::Known(d2, s2)) => {
            if d1 != d2 {
                return Clash::Dims;
            }
            match (s1, s2) {
                (Scale::Pow(a), Scale::Pow(b)) if a != b => Clash::Scales(a.saturating_sub(b)),
                (Scale::Any, _) | (_, Scale::Any) => Clash::None(Unit::Known(d1, Scale::Any)),
                _ => Clash::None(Unit::Known(d1, s1)),
            }
        }
    }
}

/// `true` if two units are both `Known` and disagree (dimension or scale).
fn known_mismatch(a: Unit, b: Unit) -> bool {
    a.is_known() && b.is_known() && !matches!(unify(a, b), Clash::None(_))
}

impl core::fmt::Display for Unit {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Unit::Unknown => f.write_str("?"),
            Unit::Lit => f.write_str("literal"),
            Unit::Known(d, s) => render_known(*d, *s, f),
        }
    }
}

/// Names for the simple one-dimension units at their conventional scales.
fn named_simple(d: Dim, s: Scale) -> Option<&'static str> {
    let p = match s {
        Scale::Pow(p) => p,
        Scale::Any => return None,
    };
    let table: &[(usize, i32, &str)] = &[
        (TIME, -9, "ns"),
        (TIME, -6, "us"),
        (TIME, -3, "ms"),
        (TIME, 0, "s"),
        (ENERGY, -12, "pJ"),
        (ENERGY, -9, "nJ"),
        (ENERGY, -6, "uJ"),
        (ENERGY, -3, "mJ"),
        (ENERGY, 0, "J"),
        (IMAGES, 0, "images"),
        (BITS, 0, "bits"),
        (SPIKES, 0, "spikes"),
        (CYCLES, 0, "cycles"),
    ];
    for &(i, pow, name) in table {
        if d == Dim::base(i) && p == pow {
            return Some(name);
        }
    }
    None
}

fn render_known(d: Dim, s: Scale, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
    if d.is_none() {
        return match s {
            Scale::Pow(0) => f.write_str("dimensionless"),
            Scale::Pow(p) => write!(f, "10^{p}"),
            Scale::Any => f.write_str("dimensionless (scale ?)"),
        };
    }
    if let Some(n) = named_simple(d, s) {
        return f.write_str(n);
    }
    // Watts and hertz.
    if d == Dim::base(ENERGY).div(Dim::base(TIME)) && s == Scale::Pow(0) {
        return f.write_str("W");
    }
    if d == Dim::base(TIME).recip() && s == Scale::Pow(0) {
        return f.write_str("Hz");
    }
    // `X/base` for a single positive and single negative exponent.
    let pos: Vec<usize> = (0..NDIMS).filter(|&i| d.0[i] == 1).collect();
    let neg: Vec<usize> = (0..NDIMS).filter(|&i| d.0[i] == -1).collect();
    let clean = (0..NDIMS).all(|i| (-1..=1).contains(&d.0[i]));
    if clean && pos.len() == 1 && neg.len() == 1 {
        if let Some(num) = named_simple(Dim::base(pos[0]), s) {
            let den = ["s", "J", "image", "bit", "spike", "cycle"][neg[0]];
            return write!(f, "{num}/{den}");
        }
    }
    // Generic fallback: 10^p · s^a·J^b·…
    match s {
        Scale::Pow(0) => {}
        Scale::Pow(p) => write!(f, "10^{p} ")?,
        Scale::Any => f.write_str("10^? ")?,
    }
    let names = ["s", "J", "images", "bits", "spikes", "cycles"];
    let mut first = true;
    for (i, name) in names.iter().enumerate() {
        if d.0[i] != 0 {
            if !first {
                f.write_str("·")?;
            }
            first = false;
            if d.0[i] == 1 {
                f.write_str(name)?;
            } else {
                write!(f, "{}^{}", name, d.0[i])?;
            }
        }
    }
    Ok(())
}

// ---- unit seeding: suffixes and the signature table -------------------------

/// Names whose unit the suffix alone under-specifies — per-event rates and
/// totals the core model composes (validated by hand against `timing.rs`,
/// `perf.rs`, `energy.rs`: `compute_cycles * cycle_ns * 1e-9` must come
/// out as seconds, `spikes * read_energy_pj * 1e-12` as joules).
pub const NAME_UNITS: &[(&str, Unit)] = &[
    ("cycle_ns", per(TIME, -9, CYCLES)),
    ("cycle_testing_ns", per(TIME, -9, CYCLES)),
    ("cycle_training_ns", per(TIME, -9, CYCLES)),
    ("read_latency_ns", per(TIME, -9, SPIKES)),
    ("write_latency_ns", per(TIME, -9, SPIKES)),
    ("read_energy_pj", per(ENERGY, -12, SPIKES)),
    ("write_energy_pj", per(ENERGY, -12, SPIKES)),
    (
        "energy_joules",
        Unit::Known(Dim([0, 1, 0, 0, 0, 0]), Scale::Pow(0)),
    ),
    ("throughput", per(IMAGES, 0, TIME)),
];

/// `base(num) / base(den)` at scale 10^p, as a const expression.
const fn per(num: usize, p: i32, den: usize) -> Unit {
    let mut d = [0i8; NDIMS];
    d[num] = 1;
    d[den] -= 1; // num == den gives a net 0 — never used that way
    Unit::Known(Dim(d), Scale::Pow(p))
}

/// One suffix word → its unit, or `Unknown`.
fn word_unit(w: &str) -> Unit {
    match w {
        "ns" => Unit::known(TIME, -9),
        "us" => Unit::known(TIME, -6),
        "ms" => Unit::known(TIME, -3),
        "s" | "sec" | "secs" | "second" | "seconds" => Unit::known(TIME, 0),
        "pj" => Unit::known(ENERGY, -12),
        "nj" => Unit::known(ENERGY, -9),
        "uj" => Unit::known(ENERGY, -6),
        "mj" => Unit::known(ENERGY, -3),
        "j" | "joule" | "joules" => Unit::known(ENERGY, 0),
        "w" | "watt" | "watts" => Unit::Known(Dim([-1, 1, 0, 0, 0, 0]), Scale::Pow(0)),
        "uw" => Unit::Known(Dim([-1, 1, 0, 0, 0, 0]), Scale::Pow(-6)),
        "mw" => Unit::Known(Dim([-1, 1, 0, 0, 0, 0]), Scale::Pow(-3)),
        "kw" => Unit::Known(Dim([-1, 1, 0, 0, 0, 0]), Scale::Pow(3)),
        "hz" => Unit::Known(Dim([-1, 0, 0, 0, 0, 0]), Scale::Pow(0)),
        "khz" => Unit::Known(Dim([-1, 0, 0, 0, 0, 0]), Scale::Pow(3)),
        "mhz" => Unit::Known(Dim([-1, 0, 0, 0, 0, 0]), Scale::Pow(6)),
        "ghz" => Unit::Known(Dim([-1, 0, 0, 0, 0, 0]), Scale::Pow(9)),
        "cycle" | "cycles" => Unit::known(CYCLES, 0),
        "image" | "images" | "img" | "imgs" => Unit::known(IMAGES, 0),
        "bit" | "bits" => Unit::known(BITS, 0),
        "spike" | "spikes" => Unit::known(SPIKES, 0),
        // Bytes are bits at a non-decimal factor: dimension checks apply,
        // scale checks are suppressed.
        "byte" | "bytes" => Unit::Known(Dim::base(BITS), Scale::Any),
        _ => Unit::Unknown,
    }
}

/// Single-segment names that are unambiguously units on their own. Bare
/// `s`/`j`/`w` stay `Unknown`: they are far more often a string, an index,
/// or a weight than a second.
const SINGLE_WORD_OK: &[&str] = &[
    "ns", "us", "ms", "pj", "nj", "uj", "mj", "hz", "khz", "mhz", "ghz", "cycles", "images",
    "bits", "spikes", "bytes", "joules", "watts", "seconds",
];

/// Derives a unit from an identifier's suffix convention: the last `_`
/// segment names the unit (`total_ns`, `energy_pj`, `n_images`), with
/// trailing `_per_<unit>` pairs building a denominator
/// (`scrub_uj_per_image`, `images_per_sec`). Any unrecognised word in the
/// chain makes the whole name `Unknown`.
pub fn suffix_unit(name: &str) -> Unit {
    let lower = name.to_ascii_lowercase();
    let segs: Vec<&str> = lower.split('_').filter(|s| !s.is_empty()).collect();
    if segs.is_empty() {
        return Unit::Unknown;
    }
    let mut end = segs.len();
    let mut denom = Unit::Lit; // neutral under mul
    while end >= 3 && segs[end - 2] == "per" {
        let d = word_unit(segs[end - 1]);
        if !d.is_known() {
            return Unit::Unknown;
        }
        denom = denom.mul(d);
        end -= 2;
    }
    let last = segs[end - 1];
    if end == 1 && segs.len() == 1 && !SINGLE_WORD_OK.contains(&last) {
        return Unit::Unknown;
    }
    let num = word_unit(last);
    if !num.is_known() {
        return Unit::Unknown;
    }
    num.div(denom)
}

/// Unit of a name: the declarative [`NAME_UNITS`] table first, then the
/// suffix convention.
pub fn name_unit(name: &str) -> Unit {
    for (n, u) in NAME_UNITS {
        if *n == name {
            return *u;
        }
    }
    suffix_unit(name)
}

// ---- power-of-ten conversion literals ---------------------------------------

/// If `e` is a pure power of ten written in e-notation (`1e-12`, `1E9`,
/// `1.0e3`), returns its exponent `k`. Plain magnitudes (`100.0`,
/// `86_400.0`) and non-power values (`2.5e3`) return `None`: only an
/// explicit `10^k` in scientific notation reads as a *unit conversion*.
fn pow10_of(e: &Expr) -> Option<i32> {
    let ExprKind::Num(text) = &e.kind else {
        return None;
    };
    let t: String = text.chars().filter(|c| *c != '_').collect();
    if t.starts_with("0x") || t.starts_with("0X") || !t.contains(['e', 'E']) {
        return None;
    }
    // Strip a numeric type suffix (`1e-3f64`), keeping the exponent digits.
    let t = t
        .strip_suffix("f64")
        .or_else(|| t.strip_suffix("f32"))
        .unwrap_or(&t);
    let v: f64 = t.parse().ok()?;
    if !(v.is_finite() && v > 0.0) {
        return None;
    }
    let k = v.log10().round();
    if (-300.0..=300.0).contains(&k) && 10f64.powi(k as i32) == v {
        Some(k as i32)
    } else {
        None
    }
}

// ---- the analysis -----------------------------------------------------------

/// Gate configuration for [`findings`].
#[derive(Debug, Clone)]
pub struct Options {
    /// PL072 fires on struct-literal fields and JSON format keys defined in
    /// files whose path contains one of these — the report/bench surface
    /// whose field names are the schema downstream tools read.
    pub sink_paths: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            sink_paths: vec![
                "bench/src/".to_string(),
                "core/src/report.rs".to_string(),
                "core/src/perf.rs".to_string(),
                "core/src/endurance.rs".to_string(),
                "core/src/energy.rs".to_string(),
            ],
        }
    }
}

/// Per-function unit facts, for tests and downstream tooling.
#[derive(Debug)]
pub struct Analysis {
    /// fn index → unit declared by its name (table/suffix).
    pub declared: Vec<Unit>,
    /// fn index → effective return unit after fixed-point inference
    /// (declared if `Known`, inferred otherwise).
    pub effective: Vec<Unit>,
}

/// Immutable evaluation context shared by all functions.
struct Cx<'a> {
    ws: &'a Workspace,
    opts: &'a Options,
    /// fn index → parsed body statements.
    bodies: Vec<Vec<Stmt>>,
    /// fn index → parameter names.
    params: Vec<Vec<String>>,
    /// fn index → current effective return unit (fixed-point state).
    effective: Vec<Unit>,
}

/// Mutable diagnostic output. `report == false` during the fixed-point
/// sweeps, `true` on the final reporting pass.
struct Out {
    report: bool,
    diags: Vec<Diagnostic>,
    /// `(path, "pl070"/"pl071"/"pl072")` → count.
    counts: BTreeMap<(String, String), usize>,
}

impl Out {
    fn emit(&mut self, code: &'static str, path: &str, line: usize, msg: String, help: &str) {
        if !self.report {
            return;
        }
        self.diags.push(Diagnostic::warning(
            code,
            format!("{path}:{line}"),
            msg,
            help,
        ));
        let key = (path.to_string(), code.to_ascii_lowercase());
        *self.counts.entry(key).or_insert(0) += 1;
    }
}

/// Per-function evaluation scope.
struct FnScope<'a> {
    f: &'a FnItem,
    path: &'a str,
    /// `true` if this file is on the PL072 sink surface.
    sink: bool,
    /// Units of `return` expressions collected while evaluating the body.
    ret_units: Vec<Unit>,
}

type Env = BTreeMap<String, Unit>;

const HELP_PL070: &str = "align the operand suffixes or insert the explicit power-of-ten \
     conversion (e.g. `* 1e-12` for pJ->J)";
const HELP_PL071: &str = "rename to match the computed unit, or fix the conversion so the \
     value matches the name";
const HELP_PL072: &str = "suffix the field/key with its unit (…_ns, …_pj, …_per_image) so \
     the emitted schema is self-describing";

/// Format-family macros whose first string argument is scanned for
/// `\"key\": {placeholder}` JSON pairs in sink files.
const FORMAT_MACROS: &[&str] = &[
    "format",
    "format_args",
    "print",
    "println",
    "write",
    "writeln",
];

fn in_sink(path: &str, opts: &Options) -> bool {
    opts.sink_paths.iter().any(|p| path.contains(p.as_str()))
}

/// Evaluates one expression to its unit, emitting diagnostics on the way.
fn eval(cx: &Cx<'_>, scope: &mut FnScope<'_>, out: &mut Out, e: &Expr, env: &mut Env) -> Unit {
    match &e.kind {
        ExprKind::Num(_) => Unit::Lit,
        ExprKind::Str(_) => Unit::Unknown,
        ExprKind::Path(segs) => match segs.as_slice() {
            [one] => env.get(one).copied().unwrap_or_else(|| name_unit(one)),
            _ => segs.last().map(|s| name_unit(s)).unwrap_or(Unit::Unknown),
        },
        ExprKind::Field { base, name } => {
            eval(cx, scope, out, base, env);
            name_unit(name)
        }
        ExprKind::MethodCall { base, name, args } => {
            let recv = eval(cx, scope, out, base, env);
            let arg_units: Vec<Unit> = args.iter().map(|a| eval(cx, scope, out, a, env)).collect();
            method_unit(cx, scope, out, e, base, name, recv, &arg_units)
        }
        ExprKind::Call { path, args } => {
            let arg_units: Vec<Unit> = args.iter().map(|a| eval(cx, scope, out, a, env)).collect();
            call_unit(cx, scope, path, &arg_units, e.span.line)
        }
        ExprKind::Macro { name, args } => {
            let arg_units: Vec<Unit> = args.iter().map(|a| eval(cx, scope, out, a, env)).collect();
            if scope.sink && FORMAT_MACROS.contains(&name.as_str()) {
                scan_json_sink(cx, scope, out, e, args, &arg_units, env);
            }
            Unit::Unknown
        }
        ExprKind::Unary { op, operand } => {
            let u = eval(cx, scope, out, operand, env);
            match op {
                '-' | '*' | '&' => u,
                _ => Unit::Unknown,
            }
        }
        ExprKind::Binary { op, lhs, rhs } => eval_binary(cx, scope, out, e, op, lhs, rhs, env),
        ExprKind::Cast { operand, .. } => eval(cx, scope, out, operand, env),
        ExprKind::Index { base, index } => {
            eval(cx, scope, out, index, env);
            eval(cx, scope, out, base, env)
        }
        ExprKind::StructLit { path, fields } => {
            for fi in fields {
                let Some(v) = &fi.value else { continue };
                let u = eval(cx, scope, out, v, env);
                check_field(scope, out, &fi.name, u, v.span.line, path.last());
            }
            Unit::Unknown
        }
        ExprKind::Block(stmts) => {
            let mut inner = env.clone();
            eval_block(cx, scope, out, stmts, &mut inner, false)
        }
        ExprKind::Opaque(stmts) => {
            let mut inner = env.clone();
            eval_block(cx, scope, out, stmts, &mut inner, false);
            Unit::Unknown
        }
    }
}

/// Additive operators checked by PL070 (plus the comparison family).
fn is_additive(op: &str) -> bool {
    matches!(
        op,
        "+" | "-" | "%" | "+=" | "-=" | "%=" | "=" | "==" | "!=" | "<" | "<=" | ">" | ">="
    )
}

#[allow(clippy::too_many_arguments)]
fn eval_binary(
    cx: &Cx<'_>,
    scope: &mut FnScope<'_>,
    out: &mut Out,
    whole: &Expr,
    op: &str,
    lhs: &Expr,
    rhs: &Expr,
    env: &mut Env,
) -> Unit {
    match op {
        "*" => {
            if let Some(k) = pow10_of(rhs) {
                let l = eval(cx, scope, out, lhs, env);
                return l.shift(k);
            }
            if let Some(k) = pow10_of(lhs) {
                let r = eval(cx, scope, out, rhs, env);
                return r.shift(k);
            }
            let l = eval(cx, scope, out, lhs, env);
            let r = eval(cx, scope, out, rhs, env);
            l.mul(r)
        }
        "/" => {
            let l = eval(cx, scope, out, lhs, env);
            if let Some(k) = pow10_of(rhs) {
                return l.shift(-k);
            }
            let r = eval(cx, scope, out, rhs, env);
            l.div(r)
        }
        _ if is_additive(op) => {
            let l = eval(cx, scope, out, lhs, env);
            let r = eval(cx, scope, out, rhs, env);
            let result = check_add(scope, out, op, l, r, whole.span.line);
            if matches!(
                op,
                "=" | "+=" | "-=" | "%=" | "==" | "!=" | "<" | "<=" | ">" | ">="
            ) {
                Unit::Unknown
            } else {
                result
            }
        }
        _ => {
            // Shifts, bitwise ops, ranges, `&&`/`||`, `*=`/`/=`: traverse
            // for nested diagnostics, result unknown.
            eval(cx, scope, out, lhs, env);
            eval(cx, scope, out, rhs, env);
            Unit::Unknown
        }
    }
}

/// PL070 check at an additive meeting point; returns the unified unit.
fn check_add(
    scope: &mut FnScope<'_>,
    out: &mut Out,
    op: &str,
    l: Unit,
    r: Unit,
    line: usize,
) -> Unit {
    match unify(l, r) {
        Clash::None(u) => u,
        Clash::Dims => {
            out.emit(
                diag::SEM_UNIT_MIXED,
                scope.path,
                line,
                format!(
                    "mixed units in `{op}` inside `{}`: {l} vs {r}",
                    scope.f.qualified()
                ),
                HELP_PL070,
            );
            Unit::Unknown
        }
        Clash::Scales(k) => {
            out.emit(
                diag::SEM_UNIT_MIXED,
                scope.path,
                line,
                format!(
                    "same dimension, different scales in `{op}` inside `{}`: {l} vs {r} \
                     (operands differ by 10^{k} — missing conversion factor?)",
                    scope.f.qualified()
                ),
                HELP_PL070,
            );
            Unit::Unknown
        }
    }
}

/// PL072 (sink files) / PL070 (elsewhere) check for a struct-literal field.
fn check_field(
    scope: &mut FnScope<'_>,
    out: &mut Out,
    field: &str,
    value: Unit,
    line: usize,
    struct_name: Option<&String>,
) {
    if !value.is_dimensioned() {
        return;
    }
    let declared = name_unit(field);
    let ctx = struct_name.map(|s| s.as_str()).unwrap_or("struct");
    if scope.sink {
        if !declared.is_known() {
            out.emit(
                diag::SEM_UNIT_SINK,
                scope.path,
                line,
                format!("sink field `{ctx}.{field}` receives {value} but its name carries no unit suffix"),
                HELP_PL072,
            );
        } else if known_mismatch(declared, value) {
            out.emit(
                diag::SEM_UNIT_SINK,
                scope.path,
                line,
                format!("sink field `{ctx}.{field}` is suffixed {declared} but receives {value}"),
                HELP_PL072,
            );
        }
    } else if known_mismatch(declared, value) {
        out.emit(
            diag::SEM_UNIT_MIXED,
            scope.path,
            line,
            format!("field `{ctx}.{field}` is suffixed {declared} but receives {value}"),
            HELP_PL070,
        );
    }
}

/// Unit of a method call, via the builtin tables or call-graph resolution.
#[allow(clippy::too_many_arguments)]
fn method_unit(
    cx: &Cx<'_>,
    scope: &mut FnScope<'_>,
    out: &mut Out,
    whole: &Expr,
    base: &Expr,
    name: &str,
    recv: Unit,
    args: &[Unit],
) -> Unit {
    match name {
        // Unit-preserving numeric methods.
        "abs" | "round" | "floor" | "ceil" | "trunc" | "clone" | "to_owned" | "copysign" => recv,
        // Additive family: operands must agree.
        "max" | "min" | "saturating_add" | "saturating_sub" | "rem_euclid" | "clamp" => {
            let mut u = recv;
            for &a in args {
                u = check_add(scope, out, name, u, a, whole.span.line);
            }
            u
        }
        "div_ceil" | "div_euclid" => recv.div(args.first().copied().unwrap_or(Unit::Unknown)),
        "recip" => recv.recip(),
        "mul_add" => {
            // self * a + b
            let prod = recv.mul(args.first().copied().unwrap_or(Unit::Unknown));
            let b = args.get(1).copied().unwrap_or(Unit::Unknown);
            check_add(scope, out, "mul_add", prod, b, whole.span.line)
        }
        // Duration accessors carry absolute units.
        "as_secs_f64" | "as_secs_f32" => Unit::known(TIME, 0),
        "as_nanos" => Unit::known(TIME, -9),
        "as_micros" => Unit::known(TIME, -6),
        "as_millis" => Unit::known(TIME, -3),
        "signum" => Unit::Lit,
        "sqrt" | "powi" | "powf" | "ln" | "exp" | "exp2" | "log" | "log2" | "log10" | "cbrt" => {
            Unit::Unknown
        }
        _ => {
            let recv_kind = match &base.kind {
                ExprKind::Path(segs) if segs.len() == 1 && segs[0] == "self" => Recv::SelfDot,
                _ => Recv::Dot,
            };
            resolve_unit(cx, scope, name, recv_kind, whole.span.line)
        }
    }
}

/// Unit of a free/associated call: numeric `from` is identity, otherwise
/// resolve through the call graph, falling back to the name convention.
fn call_unit(
    cx: &Cx<'_>,
    scope: &FnScope<'_>,
    path: &[String],
    args: &[Unit],
    line: usize,
) -> Unit {
    let Some(name) = path.last() else {
        return Unit::Unknown;
    };
    if path.len() >= 2 && name == "from" {
        let ty = &path[path.len() - 2];
        if matches!(
            ty.as_str(),
            "f64"
                | "f32"
                | "u8"
                | "u16"
                | "u32"
                | "u64"
                | "usize"
                | "i8"
                | "i16"
                | "i32"
                | "i64"
                | "isize"
        ) {
            return args.first().copied().unwrap_or(Unit::Unknown);
        }
    }
    let recv = if path.len() == 1 {
        Recv::Plain
    } else {
        let ty = &path[path.len() - 2];
        let ty = if ty == "Self" {
            scope.f.self_ty.clone().unwrap_or_else(|| ty.clone())
        } else {
            ty.clone()
        };
        Recv::Ty(ty)
    };
    resolve_unit(cx, scope, name, recv, line)
}

/// Resolves a call through the workspace graph; if every candidate agrees
/// on one `Known` effective unit, that wins, otherwise the name convention.
fn resolve_unit(cx: &Cx<'_>, scope: &FnScope<'_>, name: &str, recv: Recv, line: usize) -> Unit {
    let site = CallSite {
        name: name.to_string(),
        recv,
        line,
    };
    let targets = cx.ws.resolve(scope.f, &site);
    let mut agreed: Option<Unit> = None;
    let mut consistent = true;
    for t in targets {
        if let Some(u @ Unit::Known(..)) = cx.effective.get(t).copied() {
            match agreed {
                None => agreed = Some(u),
                Some(prev) if prev != u => consistent = false,
                Some(_) => {}
            }
        }
    }
    match (agreed, consistent) {
        (Some(u), true) => u,
        _ => name_unit(name),
    }
}

/// Scans a `format!`-family template in a sink file for `\"key\": {…}`
/// JSON pairs and checks each key's suffix against the paired value's unit.
#[allow(clippy::too_many_arguments)]
fn scan_json_sink(
    cx: &Cx<'_>,
    scope: &mut FnScope<'_>,
    out: &mut Out,
    whole: &Expr,
    args: &[Expr],
    arg_units: &[Unit],
    env: &mut Env,
) {
    // The template is the first string-literal argument; positional
    // placeholders map to the arguments after it.
    let Some(tmpl_idx) = args.iter().position(|a| matches!(a.kind, ExprKind::Str(_))) else {
        return;
    };
    let ExprKind::Str(raw) = &args[tmpl_idx].kind else {
        return;
    };
    // Unit of the argument feeding a placeholder, unwrapping single-arg
    // JSON/format helpers (`json_num(x)`) to their payload. Re-evaluation
    // runs with reporting off so nothing is double-emitted.
    let value_unit = |scope: &mut FnScope<'_>, out: &mut Out, env: &mut Env, i: usize| -> Unit {
        let Some(arg) = args.get(i) else {
            return Unit::Unknown;
        };
        if let ExprKind::Call { path, args: inner } = &arg.kind {
            let helper = path
                .last()
                .is_some_and(|n| n.starts_with("json") || n.starts_with("fmt"));
            if helper && inner.len() == 1 {
                let was = out.report;
                out.report = false;
                let u = eval(cx, scope, out, &inner[0], env);
                out.report = was;
                return u;
            }
        }
        arg_units.get(i).copied().unwrap_or(Unit::Unknown)
    };

    let bytes = raw.as_bytes();
    let mut i = 0usize;
    let mut positional = 0usize; // count of positional placeholders seen
    let mut pending_key: Option<String> = None;
    while i < bytes.len() {
        match bytes[i] {
            b'{' if bytes.get(i + 1) == Some(&b'{') => i += 2,
            b'}' if bytes.get(i + 1) == Some(&b'}') => i += 2,
            b'{' => {
                // Placeholder: `{}`, `{:spec}`, `{name}`, `{0}`.
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'}' {
                    j += 1;
                }
                let inner = raw.get(start..j).unwrap_or("");
                let head = inner.split(':').next().unwrap_or("");
                let unit = if head.is_empty() {
                    let u = value_unit(scope, out, env, tmpl_idx + 1 + positional);
                    positional += 1;
                    u
                } else if let Ok(n) = head.parse::<usize>() {
                    value_unit(scope, out, env, tmpl_idx + 1 + n)
                } else if head.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    env.get(head).copied().unwrap_or_else(|| name_unit(head))
                } else {
                    Unit::Unknown
                };
                if let Some(key) = pending_key.take() {
                    check_json_key(scope, out, &key, unit, whole.span.line);
                }
                i = j.saturating_add(1);
            }
            // A JSON key: `\"ident\":` in a normal literal, `"ident":` in
            // a raw literal. Either way the quote chars are present.
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                // Closing quote: bare `"` in a raw literal, or the escape
                // `\"` in a normal literal (backslash first in source).
                let after = if bytes.get(j) == Some(&b'"') {
                    Some(j + 1)
                } else if bytes.get(j) == Some(&b'\\') && bytes.get(j + 1) == Some(&b'"') {
                    Some(j + 2)
                } else {
                    None
                };
                if let Some(after) = after {
                    if j > start && bytes.get(after) == Some(&b':') {
                        pending_key = raw.get(start..j).map(|s| s.to_string());
                        i = after + 1;
                        continue;
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// PL072 check for one `"key": value` pair in a JSON template.
fn check_json_key(scope: &mut FnScope<'_>, out: &mut Out, key: &str, value: Unit, line: usize) {
    if !value.is_dimensioned() {
        return;
    }
    let declared = name_unit(key);
    if !declared.is_known() {
        out.emit(
            diag::SEM_UNIT_SINK,
            scope.path,
            line,
            format!("JSON key \"{key}\" receives {value} but carries no unit suffix"),
            HELP_PL072,
        );
    } else if known_mismatch(declared, value) {
        out.emit(
            diag::SEM_UNIT_SINK,
            scope.path,
            line,
            format!("JSON key \"{key}\" is suffixed {declared} but receives {value}"),
            HELP_PL072,
        );
    }
}

/// Evaluates a statement list; returns the tail expression's unit.
/// `top_level` marks the function body itself, whose tail is a return.
fn eval_block(
    cx: &Cx<'_>,
    scope: &mut FnScope<'_>,
    out: &mut Out,
    stmts: &[Stmt],
    env: &mut Env,
    top_level: bool,
) -> Unit {
    let mut tail = Unit::Unknown;
    for s in stmts {
        match s {
            Stmt::Let { name, init, span } => {
                let u = init
                    .as_ref()
                    .map(|e| eval(cx, scope, out, e, env))
                    .unwrap_or(Unit::Unknown);
                if name.is_empty() {
                    continue;
                }
                let declared = name_unit(name);
                if known_mismatch(declared, u) {
                    out.emit(
                        diag::SEM_UNIT_DECLARED,
                        scope.path,
                        span.line,
                        format!(
                            "binding `{name}` in `{}` is suffixed {declared} but its \
                             initializer computes {u}",
                            scope.f.qualified()
                        ),
                        HELP_PL071,
                    );
                }
                env.insert(name.clone(), if declared.is_known() { declared } else { u });
            }
            Stmt::Expr(e) => {
                eval(cx, scope, out, e, env);
            }
            Stmt::Ret(e, _) => {
                let u = e
                    .as_ref()
                    .map(|e| eval(cx, scope, out, e, env))
                    .unwrap_or(Unit::Unknown);
                scope.ret_units.push(u);
            }
            Stmt::Tail(e) => {
                tail = eval(cx, scope, out, e, env);
                if top_level {
                    scope.ret_units.push(tail);
                }
            }
        }
    }
    tail
}

/// Joins the units of all return sites: one agreed `Known` unit wins,
/// disagreement or no information is `Unknown`.
fn join_returns(units: &[Unit]) -> Unit {
    let mut agreed: Option<Unit> = None;
    for &u in units {
        if !u.is_known() {
            continue;
        }
        match agreed {
            None => agreed = Some(u),
            Some(prev) if known_mismatch(prev, u) => return Unit::Unknown,
            Some(_) => {}
        }
    }
    agreed.unwrap_or(Unit::Unknown)
}

/// Evaluates one function body; returns its inferred return unit.
fn infer_fn(cx: &Cx<'_>, i: usize, out: &mut Out) -> Unit {
    let Some(f) = cx.ws.fns.get(i) else {
        return Unit::Unknown;
    };
    let Some(file) = cx.ws.files.get(f.file) else {
        return Unit::Unknown;
    };
    let empty: Vec<Stmt> = Vec::new();
    let body = cx.bodies.get(i).unwrap_or(&empty);
    let mut scope = FnScope {
        f,
        path: &file.path,
        sink: in_sink(&file.path, cx.opts),
        ret_units: Vec::new(),
    };
    let mut env: Env = Env::new();
    for p in cx.params.get(i).map(Vec::as_slice).unwrap_or(&[]) {
        let u = name_unit(p);
        if u.is_known() {
            env.insert(p.clone(), u);
        }
    }
    eval_block(cx, &mut scope, out, body, &mut env, true);
    let inferred = join_returns(&scope.ret_units);

    // PL071 at the function level, reporting pass only.
    let declared = name_unit(&f.name);
    if out.report && known_mismatch(declared, inferred) {
        out.emit(
            diag::SEM_UNIT_DECLARED,
            scope.path,
            f.line,
            format!(
                "fn `{}` is suffixed {declared} but its body computes {inferred}",
                f.qualified()
            ),
            HELP_PL071,
        );
    }
    if declared.is_known() {
        declared
    } else {
        inferred
    }
}

fn build_cx<'a>(ws: &'a Workspace, opts: &'a Options) -> Cx<'a> {
    let n = ws.fns.len();
    let mut bodies = Vec::with_capacity(n);
    let mut params = Vec::with_capacity(n);
    let mut effective = Vec::with_capacity(n);
    for f in &ws.fns {
        let (body, names) = match (f.body, ws.files.get(f.file)) {
            (Some((lo, hi)), Some(file)) => (
                expr::parse_body(&file.src, &file.toks, lo, hi),
                expr::param_names(&file.src, &file.toks, lo),
            ),
            _ => (Vec::new(), Vec::new()),
        };
        bodies.push(body);
        params.push(names);
        effective.push(name_unit(&f.name));
    }
    Cx {
        ws,
        opts,
        bodies,
        params,
        effective,
    }
}

/// Runs the fixed-point return-unit inference (no diagnostics).
pub fn analyze(ws: &Workspace, opts: &Options) -> Analysis {
    let mut cx = build_cx(ws, opts);
    let mut out = Out {
        report: false,
        diags: Vec::new(),
        counts: BTreeMap::new(),
    };
    run_fixpoint(&mut cx, &mut out);
    Analysis {
        declared: ws.fns.iter().map(|f| name_unit(&f.name)).collect(),
        effective: cx.effective,
    }
}

fn run_fixpoint(cx: &mut Cx<'_>, out: &mut Out) {
    for _ in 0..8 {
        let mut changed = false;
        for i in 0..cx.ws.fns.len() {
            let u = infer_fn(cx, i, out);
            if cx.effective.get(i).copied() != Some(u) {
                if let Some(slot) = cx.effective.get_mut(i) {
                    *slot = u;
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

/// PL070/PL071/PL072 findings over the whole workspace, plus per-file
/// per-code counts for the `src-lint --semantic` allowlist discipline.
/// Deterministic order (workspace file/function order).
pub fn findings(
    ws: &Workspace,
    opts: &Options,
) -> (Vec<Diagnostic>, BTreeMap<(String, String), usize>) {
    let mut cx = build_cx(ws, opts);
    let mut out = Out {
        report: false,
        diags: Vec::new(),
        counts: BTreeMap::new(),
    };
    run_fixpoint(&mut cx, &mut out);
    out.report = true;
    for i in 0..cx.ws.fns.len() {
        infer_fn(&cx, i, &mut out);
    }
    (out.diags, out.counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::build(vec![(
            "crates/core/src/timing.rs".to_string(),
            src.to_string(),
        )])
    }

    fn sink_ws(src: &str) -> Workspace {
        Workspace::build(vec![(
            "crates/bench/src/report.rs".to_string(),
            src.to_string(),
        )])
    }

    fn run(w: &Workspace) -> Vec<Diagnostic> {
        findings(w, &Options::default()).0
    }

    /// Effective unit of the first fn named `name`.
    fn unit_of(w: &Workspace, name: &str) -> Unit {
        let a = analyze(w, &Options::default());
        let i = w
            .fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn `{name}`"));
        a.effective[i]
    }

    const NS: Unit = Unit::Known(Dim([1, 0, 0, 0, 0, 0]), Scale::Pow(-9));
    const S: Unit = Unit::Known(Dim([1, 0, 0, 0, 0, 0]), Scale::Pow(0));
    const J: Unit = Unit::Known(Dim([0, 1, 0, 0, 0, 0]), Scale::Pow(0));
    const W: Unit = Unit::Known(Dim([-1, 1, 0, 0, 0, 0]), Scale::Pow(0));

    #[test]
    fn suffixes_parse_to_units() {
        assert_eq!(suffix_unit("total_ns"), NS);
        assert_eq!(suffix_unit("time_s"), S);
        assert_eq!(suffix_unit("energy_j"), J);
        assert_eq!(suffix_unit("power_w"), W);
        assert_eq!(
            suffix_unit("scrub_uj_per_image"),
            Unit::Known(Dim([0, 1, -1, 0, 0, 0]), Scale::Pow(-6))
        );
        assert_eq!(
            suffix_unit("images_per_sec"),
            Unit::Known(Dim([-1, 0, 1, 0, 0, 0]), Scale::Pow(0))
        );
        // Ambiguous bare single letters stay unknown.
        assert_eq!(suffix_unit("s"), Unit::Unknown);
        assert_eq!(suffix_unit("j"), Unit::Unknown);
        assert_eq!(suffix_unit("w"), Unit::Unknown);
        assert_eq!(suffix_unit("weights"), Unit::Unknown);
        // The signature table refines per-event rates.
        assert_eq!(
            name_unit("cycle_ns"),
            Unit::Known(Dim([1, 0, 0, 0, 0, -1]), Scale::Pow(-9))
        );
        assert_eq!(
            name_unit("read_energy_pj"),
            Unit::Known(Dim([0, 1, 0, 0, -1, 0]), Scale::Pow(-12))
        );
    }

    #[test]
    fn representative_timing_energy_expressions_infer_correctly() {
        // The perf.rs shape: cycles × ns/cycle × 1e-9 → seconds.
        let w = ws(
            "fn time_of(compute_cycles: f64, cycle_ns: f64, scrub_ns: f64) -> f64 {\n\
             (compute_cycles * cycle_ns + scrub_ns) * 1e-9\n}\n\
             fn power_of(energy_j: f64, time_s: f64) -> f64 { energy_j / time_s }\n\
             fn e_of(spikes: f64, read_energy_pj: f64) -> f64 { spikes * read_energy_pj * 1e-12 }\n",
        );
        assert_eq!(unit_of(&w, "time_of"), S);
        assert_eq!(unit_of(&w, "power_of"), W);
        assert_eq!(unit_of(&w, "e_of"), J);
        assert!(run(&w).is_empty(), "{:?}", run(&w));
    }

    #[test]
    fn mixed_dimensions_in_add_are_pl070() {
        let w = ws("fn f(a_ns: f64, b_j: f64) -> f64 { a_ns + b_j }");
        let diags = run(&w);
        assert!(
            diags.iter().any(|d| d.code == diag::SEM_UNIT_MIXED),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_conversion_factor_is_pl070() {
        // pJ + J: same dimension, scales differ by 10^-12.
        let w = ws("fn f(a_pj: f64, b_j: f64) -> f64 { a_pj + b_j }");
        let diags = run(&w);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("scales"), "{:?}", diags[0]);
        // With the conversion, clean.
        let w = ws("fn f(a_pj: f64, b_j: f64) -> f64 { a_pj * 1e-12 + b_j }");
        assert!(run(&w).is_empty(), "{:?}", run(&w));
    }

    #[test]
    fn literals_adopt_context() {
        let w = ws("fn f(x_ns: f64) -> f64 { (x_ns + 1.0).max(100.0) }\n\
             fn g(x_ns: f64) -> bool { x_ns > 0.0 }");
        assert!(run(&w).is_empty(), "{:?}", run(&w));
        assert_eq!(unit_of(&w, "f"), NS);
    }

    #[test]
    fn binding_suffix_disagreement_is_pl071() {
        let w = ws("fn f(a_ns: f64) { let total_j = a_ns * 2.0; let _ = total_j; }");
        let diags = run(&w);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, diag::SEM_UNIT_DECLARED);
        assert!(diags[0].message.contains("total_j"), "{:?}", diags[0]);
    }

    #[test]
    fn fn_return_suffix_disagreement_is_pl071() {
        let w = ws("fn total_ns(a_j: f64) -> f64 { a_j * 2.0 }");
        let diags = run(&w);
        assert!(
            diags
                .iter()
                .any(|d| d.code == diag::SEM_UNIT_DECLARED && d.message.contains("total_ns")),
            "{diags:?}"
        );
    }

    #[test]
    fn return_units_propagate_across_the_call_graph() {
        // `elapsed` has no suffix; its unit comes from its body, and the
        // caller's mismatch is caught one hop away.
        let w = ws("fn elapsed(t_ns: f64) -> f64 { t_ns * 1e-9 }\n\
             fn f(t_ns: f64, budget_ns: f64) -> bool { elapsed(t_ns) > budget_ns }");
        let diags = run(&w);
        assert!(
            diags
                .iter()
                .any(|d| d.code == diag::SEM_UNIT_MIXED && d.message.contains("scales")),
            "{diags:?}"
        );
    }

    #[test]
    fn sink_struct_field_without_suffix_is_pl072() {
        let w = sink_ws(
            "struct Row { seconds: f64, time_ns: f64 }\n\
             fn make(t_ns: f64) -> Row { Row { seconds: t_ns, time_ns: t_ns } }",
        );
        let diags = run(&w);
        // `seconds` *is* suffixed (s) but receives ns → wrong suffix;
        // `time_ns` matches.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, diag::SEM_UNIT_SINK);
        assert!(diags[0].message.contains("seconds"), "{:?}", diags[0]);
    }

    #[test]
    fn sink_json_key_audit_is_pl072() {
        let w = sink_ws(
            "fn emit(t_ns: f64, e_j: f64) -> String {\n\
             format!(\"{{\\\"elapsed\\\": {}, \\\"energy_j\\\": {}}}\", t_ns, e_j)\n}",
        );
        let diags = run(&w);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, diag::SEM_UNIT_SINK);
        assert!(diags[0].message.contains("elapsed"), "{:?}", diags[0]);
    }

    #[test]
    fn json_named_placeholders_and_helpers_are_followed() {
        let w = sink_ws(
            "fn json_num(v: f64) -> String { format!(\"{v}\") }\n\
             fn emit(t_ns: f64) -> String {\n\
             format!(\"{{\\\"wall\\\": {}}}\", json_num(t_ns))\n}",
        );
        let diags = run(&w);
        assert!(
            diags
                .iter()
                .any(|d| d.code == diag::SEM_UNIT_SINK && d.message.contains("wall")),
            "{diags:?}"
        );
    }

    #[test]
    fn unknown_suppresses_everything() {
        let w = ws("fn f(x: f64, y_ns: f64) -> f64 { x + y_ns }\n\
             fn g(v: &[f64], i_ns: f64) -> f64 { v[0] + i_ns }");
        assert!(run(&w).is_empty(), "{:?}", run(&w));
    }

    #[test]
    fn non_sink_files_use_pl070_for_field_mismatches() {
        let w = ws("struct T { t_ns: f64 }\nfn f(a_j: f64) -> T { T { t_ns: a_j } }");
        let diags = run(&w);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, diag::SEM_UNIT_MIXED);
    }

    #[test]
    fn counts_are_keyed_by_path_and_code() {
        let w = ws("fn f(a_ns: f64, b_j: f64) -> f64 { a_ns + b_j }");
        let (_, counts) = findings(&w, &Options::default());
        assert_eq!(
            counts.get(&("crates/core/src/timing.rs".to_string(), "pl070".to_string())),
            Some(&1)
        );
    }
}
