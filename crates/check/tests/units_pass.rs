//! Integration tests for the dimensional-analysis layer: never-panic
//! fuzzing of the `check::expr` parser on arbitrary byte soup, the
//! PL070/PL071/PL072 pass against a deliberately broken fixture (each
//! diagnostic pinned to its exact site), and the real workspace, whose
//! only findings must be the two justified `lint-allow.txt` entries.

use std::path::Path;

use pipelayer_check::callgraph::Workspace;
use pipelayer_check::expr::{self, Stmt};
use pipelayer_check::{diag, lex, units};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng as _};

// ---- never-panics fuzzing of the expression parser --------------------------

/// Asserts every span in a parsed statement tree is in-bounds and ordered.
fn check_spans(stmts: &[Stmt], len: usize) {
    for s in stmts {
        s.walk(&mut |e| {
            assert!(e.span.start <= e.span.end, "span inverted: {:?}", e.span);
            assert!(e.span.end <= len, "span out of bounds: {:?}", e.span);
        });
    }
}

/// Characters biased toward expression-grammar edge cases.
const SOUP: &[u8] = b"(){}[]<>=+-*/%&|!?.,;:#'\"_azAZ09 \n e!=>->..";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Parsing arbitrary byte soup (lossily decoded) must never panic and
    /// must keep every node's byte span inside the source.
    #[test]
    fn expr_never_panics_on_byte_soup(seed in 0u64..1_000_000, len in 0usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..=255)).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let toks = lex::lex(&src);
        let stmts = expr::parse_body(&src, &toks, 0, toks.len());
        check_spans(&stmts, src.len());
    }

    /// Soup biased toward operator/delimiter sequences — unbalanced parens,
    /// half-written ranges, `=>`/`->` fragments.
    #[test]
    fn expr_never_panics_on_operator_soup(seed in 0u64..1_000_000, len in 0usize..150) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0dd5);
        let src: String = (0..len)
            .map(|_| SOUP[rng.random_range(0..SOUP.len())] as char)
            .collect();
        let toks = lex::lex(&src);
        let stmts = expr::parse_body(&src, &toks, 0, toks.len());
        check_spans(&stmts, src.len());
        // The units pass built on top must be just as unkillable.
        let ws = Workspace::build(vec![("crates/x/src/soup.rs".to_string(), src)]);
        let _ = units::findings(&ws, &units::Options::default());
    }
}

// ---- the broken fixture: all three diagnostics, exact sites -----------------

/// One fixture, three planted unit bugs, each hit by exactly one code:
/// ns+J addition (PL070), a pJ function suffixed `_j` with its `1e-12`
/// missing (PL071), and a dimensioned value reaching an unsuffixed JSON
/// sink key (PL072).
#[test]
fn broken_fixture_pins_all_three_diagnostics() {
    let model = "\
fn total_time(a_ns: f64, b_j: f64) -> f64 {\n\
    let t_ns = a_ns + b_j;\n\
    t_ns\n\
}\n\
fn energy_j(e_pj: f64) -> f64 {\n\
    e_pj\n\
}\n";
    let sink = "\
fn emit(t_ns: f64) -> String {\n\
    format!(\"{{\\\"elapsed\\\": {}}}\", t_ns)\n\
}\n";
    let ws = Workspace::build(vec![
        ("crates/core/src/model.rs".to_string(), model.to_string()),
        ("crates/bench/src/report.rs".to_string(), sink.to_string()),
    ]);
    let (diags, counts) = units::findings(&ws, &units::Options::default());
    let got: Vec<(&str, &str)> = diags
        .iter()
        .map(|d| (d.code, d.location.as_str()))
        .collect();
    assert_eq!(
        got,
        vec![
            (diag::SEM_UNIT_MIXED, "crates/core/src/model.rs:2"),
            (diag::SEM_UNIT_DECLARED, "crates/core/src/model.rs:5"),
            (diag::SEM_UNIT_SINK, "crates/bench/src/report.rs:2"),
        ],
        "{diags:?}"
    );
    // The messages carry the units, not just the sites.
    assert!(diags[0].message.contains("ns") && diags[0].message.contains("J"));
    assert!(
        diags[1].message.contains("J") && diags[1].message.contains("pJ"),
        "{}",
        diags[1].message
    );
    assert!(
        diags[2].message.contains("\"elapsed\""),
        "{}",
        diags[2].message
    );
    // Counts feed the shrink-only allowlist, keyed (path, code).
    assert_eq!(
        counts.get(&("crates/core/src/model.rs".to_string(), "pl070".to_string())),
        Some(&1)
    );
    assert_eq!(
        counts.get(&("crates/core/src/model.rs".to_string(), "pl071".to_string())),
        Some(&1)
    );
    assert_eq!(
        counts.get(&(
            "crates/bench/src/report.rs".to_string(),
            "pl072".to_string()
        )),
        Some(&1)
    );
}

/// The fixed fixture — conversions and suffixes in place — is clean.
#[test]
fn repaired_fixture_is_clean() {
    let model = "\
fn total_time_ns(a_ns: f64, b_s: f64) -> f64 {\n\
    let t_ns = a_ns + b_s * 1e9;\n\
    t_ns\n\
}\n\
fn energy_j(e_pj: f64) -> f64 {\n\
    e_pj * 1e-12\n\
}\n";
    let sink = "\
fn emit(t_ns: f64) -> String {\n\
    format!(\"{{\\\"elapsed_ns\\\": {}}}\", t_ns)\n\
}\n";
    let ws = Workspace::build(vec![
        ("crates/core/src/model.rs".to_string(), model.to_string()),
        ("crates/bench/src/report.rs".to_string(), sink.to_string()),
    ]);
    let (diags, _) = units::findings(&ws, &units::Options::default());
    assert!(diags.is_empty(), "{diags:?}");
}

// ---- the real workspace ------------------------------------------------------

/// The whole tree runs through the units pass; the only surviving findings
/// are the two `lint-allow.txt` pl071 rows (count multipliers in the ISAAC
/// baseline, bits-as-spike-slots in the ReRAM read phase), pinned here so
/// any new finding or any drift in the justified ones fails loudly.
#[test]
fn units_real_workspace_matches_the_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("workspace loads");
    let (diags, _) = units::findings(&ws, &units::Options::default());
    let got: Vec<String> = diags
        .iter()
        .map(|d| format!("{} {}", d.code, d.location))
        .collect();
    assert_eq!(
        got,
        vec![
            "PL071 crates/baselines/src/isaac.rs:60".to_string(),
            "PL071 crates/reram/src/energy.rs:71".to_string(),
        ],
        "unexpected PL07x drift on the real tree: {diags:?}"
    );
}
