//! Golden tests for the `plcheck` CLI surface: the `--json` output schema
//! (key sets, code/severity formats, the `--ranges` extension), the
//! `--codes` table, and exit statuses. Downstream tooling greps and parses
//! this output; schema drift must be a deliberate, test-visible change.

use std::collections::BTreeSet;
use std::process::{Command, Output};

fn plcheck(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_plcheck"))
        .args(args)
        .output()
        .expect("plcheck runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

// ---- a minimal JSON model, enough to pin the schema ------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value();
        p.skip_ws();
        assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
        v
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        assert!(self.pos < self.bytes.len(), "unexpected end of JSON");
        self.bytes[self.pos]
    }

    fn eat(&mut self, b: u8) {
        assert_eq!(self.peek(), b, "at byte {}", self.pos);
        self.pos += 1;
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        assert!(
            self.bytes[self.pos..].starts_with(word.as_bytes()),
            "bad literal at {}",
            self.pos
        );
        self.pos += word.len();
        v
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => {
                self.eat(b'{');
                let mut fields = Vec::new();
                if self.peek() != b'}' {
                    loop {
                        let Json::Str(k) = self.string() else {
                            unreachable!()
                        };
                        self.eat(b':');
                        fields.push((k, self.value()));
                        if self.peek() == b',' {
                            self.eat(b',');
                        } else {
                            break;
                        }
                    }
                }
                self.eat(b'}');
                Json::Obj(fields)
            }
            b'[' => {
                self.eat(b'[');
                let mut items = Vec::new();
                if self.peek() != b']' {
                    loop {
                        items.push(self.value());
                        if self.peek() == b',' {
                            self.eat(b',');
                        } else {
                            break;
                        }
                    }
                }
                self.eat(b']');
                Json::Arr(items)
            }
            b'"' => self.string(),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Json {
        self.eat(b'"');
        let mut s = String::new();
        loop {
            assert!(self.pos < self.bytes.len(), "unterminated string");
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return Json::Str(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.bytes[self.pos];
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .expect("hex escape");
                            let code = u32::from_str_radix(hex, 16).expect("hex escape");
                            s.push(char::from_u32(code).expect("BMP scalar"));
                            self.pos += 4;
                        }
                        other => panic!("unsupported escape \\{}", other as char),
                    }
                }
                _ => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf-8");
                    let c = rest.chars().next().expect("char");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf-8 number");
        Json::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number `{text}`")),
        )
    }
}

// ---- schema pins -----------------------------------------------------------

fn assert_diagnostic_schema(d: &Json) {
    assert_eq!(
        d.keys(),
        ["code", "severity", "location", "message", "help"],
        "diagnostic key set/order changed"
    );
    let code = d.get("code").expect("code").as_str();
    assert!(
        code.len() == 5 && code.starts_with("PL") && code[2..].bytes().all(|b| b.is_ascii_digit()),
        "bad code format `{code}`"
    );
    let severity = d.get("severity").expect("severity").as_str();
    assert!(
        ["info", "warning", "error"].contains(&severity),
        "bad severity `{severity}`"
    );
    for key in ["location", "message", "help"] {
        assert!(
            matches!(d.get(key), Some(Json::Str(_))),
            "{key} must be a string"
        );
    }
}

#[test]
fn json_output_schema_is_pinned() {
    let out = plcheck(&["--json", "--ranges", "Mnist-A", "AlexNet"]);
    assert!(out.status.success());
    let doc = Parser::parse(stdout(&out).trim());
    let nets = doc.as_arr();
    assert_eq!(nets.len(), 2);

    for (net, name, value_domain) in [(&nets[0], "Mnist-A", true), (&nets[1], "AlexNet", false)] {
        assert_eq!(
            net.keys(),
            ["network", "ok", "diagnostics", "ranges"],
            "per-network key set/order changed"
        );
        assert_eq!(net.get("network").expect("network").as_str(), name);
        assert_eq!(net.get("ok"), Some(&Json::Bool(true)));
        for d in net.get("diagnostics").expect("diagnostics").as_arr() {
            assert_diagnostic_schema(d);
        }

        let ranges = net.get("ranges").expect("--ranges adds a ranges field");
        assert_eq!(ranges.keys(), ["input", "value_domain", "stages"]);
        assert_eq!(
            ranges.get("value_domain"),
            Some(&Json::Bool(value_domain)),
            "{name}"
        );
        let input = ranges.get("input").expect("input");
        assert_eq!(input.keys(), ["lo", "hi"]);
        for stage in ranges.get("stages").expect("stages").as_arr() {
            assert_eq!(
                stage.keys(),
                [
                    "index",
                    "name",
                    "activation",
                    "delta",
                    "dweight_mag",
                    "dbias_mag",
                    "acc_bits_geometry",
                    "acc_bits_data"
                ],
                "stage key set/order changed"
            );
            for key in ["activation", "delta"] {
                match stage.get(key).expect(key) {
                    Json::Null => assert!(!value_domain, "{name}: bounded nets report intervals"),
                    iv @ Json::Obj(_) => {
                        assert_eq!(iv.keys(), ["lo", "hi"]);
                        assert!(value_domain, "{name}: geometry-only nets report null");
                    }
                    other => panic!("{key} must be null or an interval, got {other:?}"),
                }
            }
        }
    }
}

#[test]
fn json_without_ranges_has_no_ranges_field() {
    let out = plcheck(&["--json", "Mnist-A"]);
    assert!(out.status.success());
    let doc = Parser::parse(stdout(&out).trim());
    assert_eq!(doc.as_arr()[0].keys(), ["network", "ok", "diagnostics"]);
}

#[test]
fn under_width_run_reports_range_codes_and_fails() {
    let out = plcheck(&["--json", "--data-bits", "8", "--acc-bits", "20", "C-4"]);
    assert!(
        !out.status.success(),
        "under-width config must exit non-zero"
    );
    let doc = Parser::parse(stdout(&out).trim());
    let net = &doc.as_arr()[0];
    assert_eq!(net.get("ok"), Some(&Json::Bool(false)));
    let codes: BTreeSet<String> = net
        .get("diagnostics")
        .expect("diagnostics")
        .as_arr()
        .iter()
        .map(|d| d.get("code").expect("code").as_str().to_string())
        .collect();
    assert!(codes.contains("PL042"), "{codes:?}");
}

#[test]
fn codes_table_matches_the_library() {
    let out = plcheck(&["--codes"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), pipelayer_check::diag::CODE_TABLE.len());
    for (line, (code, what)) in lines.iter().zip(pipelayer_check::diag::CODE_TABLE) {
        assert_eq!(*line, format!("{code}  {what}"));
    }
}

#[test]
fn usage_errors_exit_2() {
    let out = plcheck(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let out = plcheck(&["no-such-network"]);
    assert_eq!(out.status.code(), Some(2));
}
