//! Integration tests for the semantic source-analysis layer: lexer golden
//! tests on adversarial Rust, never-panics fuzzing of the lexer/masker, and
//! the PL061 cache-coherence pass against a deliberately broken fixture
//! (plus the real workspace, which must come back clean).

use std::path::Path;

use pipelayer_check::callgraph::Workspace;
use pipelayer_check::lex::{self, TokKind};
use pipelayer_check::{cachecheck, diag};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng as _};

fn kinds_and_texts(src: &str) -> Vec<(TokKind, &str)> {
    lex::lex(src)
        .iter()
        .map(|t| (t.kind, t.text(src)))
        .collect()
}

// ---- lexer golden tests ----------------------------------------------------

#[test]
fn golden_raw_strings_with_hashes() {
    // The `"#` inside the r##-string must not close it; the `"fn fake()"`
    // payload must not produce an Ident.
    let src = r####"let s = r##"quote " and hash "# and fn fake()"##;"####;
    assert_eq!(
        kinds_and_texts(src),
        vec![
            (TokKind::Ident, "let"),
            (TokKind::Ident, "s"),
            (TokKind::Punct, "="),
            (
                TokKind::Str,
                r####"r##"quote " and hash "# and fn fake()"##"####
            ),
            (TokKind::Punct, ";"),
        ]
    );
}

#[test]
fn golden_nested_block_comments() {
    // Rust block comments nest; the inner `*/` must not end the outer one.
    let src = "a /* outer /* inner */ still comment */ b";
    assert_eq!(
        kinds_and_texts(src),
        vec![(TokKind::Ident, "a"), (TokKind::Ident, "b")]
    );
    // lex_raw keeps the comment as one token.
    let raw = lex::lex_raw(src);
    let comments: Vec<&str> = raw
        .iter()
        .filter(|t| t.kind == TokKind::Comment)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(comments, vec!["/* outer /* inner */ still comment */"]);
}

#[test]
fn golden_char_escapes_and_lifetimes() {
    // '\'' and '\\' are chars; 'a in a generic position is a lifetime.
    let src = r"let q = '\''; let b = '\\'; fn f<'a>(x: &'a u8) {}";
    let toks = kinds_and_texts(src);
    assert!(toks.contains(&(TokKind::Char, r"'\''")), "{toks:?}");
    assert!(toks.contains(&(TokKind::Char, r"'\\'")), "{toks:?}");
    assert!(toks.contains(&(TokKind::Lifetime, "'a")), "{toks:?}");
}

#[test]
fn golden_strings_swallow_code_like_payloads() {
    let src = r#"call("panic!(\"not a panic\") // not a comment");"#;
    let toks = kinds_and_texts(src);
    assert_eq!(
        toks.iter().filter(|(k, _)| *k == TokKind::Str).count(),
        1,
        "{toks:?}"
    );
    // The only idents are `call` — nothing from inside the string.
    let idents: Vec<&str> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Ident)
        .map(|(_, t)| *t)
        .collect();
    assert_eq!(idents, vec!["call"]);
}

#[test]
fn golden_byte_strings_and_numbers() {
    let src = r#"let x = b"bytes \" here"; let n = 0xFF_u32; let f = 2.5e-3;"#;
    let toks = kinds_and_texts(src);
    assert!(
        toks.contains(&(TokKind::Str, r#"b"bytes \" here""#)),
        "{toks:?}"
    );
    assert!(toks.contains(&(TokKind::Num, "0xFF_u32")), "{toks:?}");
    assert!(toks.contains(&(TokKind::Num, "2.5e-3")), "{toks:?}");
}

#[test]
fn golden_line_comment_does_not_eat_next_line() {
    let src = "// fn ghost()\nfn real() {}";
    let idents: Vec<&str> = lex::lex(src)
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(idents, vec!["fn", "real"]);
    // Line numbers survive the comment.
    let real = lex::lex(src)
        .into_iter()
        .find(|t| t.text(src) == "real")
        .unwrap();
    assert_eq!(real.line, 2);
}

// ---- mask invariants -------------------------------------------------------

#[test]
fn mask_blanks_literals_and_comments_but_keeps_geometry() {
    let src = "let s = \"panic!\"; /* unwrap\nhere */ x";
    let masked = lex::mask(src);
    assert_eq!(masked.len(), src.len());
    assert_eq!(
        masked.matches('\n').count(),
        src.matches('\n').count(),
        "newlines must survive masking"
    );
    assert!(!masked.contains("panic"), "{masked}");
    assert!(!masked.contains("unwrap"), "{masked}");
    assert!(masked.contains("let s = "), "{masked}");
}

// ---- never-panics fuzzing --------------------------------------------------

/// Characters biased toward lexer edge cases.
const SOUP: &[u8] = b"\"'rb#\\/*\n `{}()!_azAZ09.\x7f";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Lexing arbitrary byte soup (lossily decoded) must never panic, and
    /// token spans must stay within bounds and non-decreasing.
    #[test]
    fn lex_never_panics_on_byte_soup(seed in 0u64..1_000_000, len in 0usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..=255)).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        for t in lex::lex_raw(&src) {
            prop_assert!(t.start <= t.end && t.end <= src.len());
        }
        let masked = lex::mask(&src);
        prop_assert_eq!(masked.len(), src.len());
    }

    /// Soup biased toward quote/comment/hash delimiters — the hard cases.
    #[test]
    fn lex_never_panics_on_delimiter_soup(seed in 0u64..1_000_000, len in 0usize..120) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let src: String = (0..len)
            .map(|_| SOUP[rng.random_range(0..SOUP.len())] as char)
            .collect();
        let toks = lex::lex_raw(&src);
        for w in toks.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "tokens overlap in {src:?}");
        }
        let masked = lex::mask(&src);
        prop_assert_eq!(masked.matches('\n').count(), src.matches('\n').count());
    }
}

// ---- PL061 against a broken fixture and the real workspace -----------------

fn fixture_spec() -> Vec<cachecheck::CacheSpec> {
    vec![cachecheck::CacheSpec {
        type_name: "Grid".to_string(),
        cache_field: "sum_cache".to_string(),
        state_fields: vec!["cells".to_string()],
    }]
}

#[test]
fn pl061_flags_the_broken_fixture_method_by_name() {
    // `poke` writes `cells` without touching `sum_cache` — the bug PL061
    // exists to catch. `poke_ok` invalidates and must pass.
    let ws = Workspace::build(vec![(
        "fixture.rs".to_string(),
        "pub struct Grid { cells: Vec<u8>, sum_cache: Option<u64> }\n\
         impl Grid {\n\
             pub fn poke(&mut self, i: usize) { self.cells[i] += 1; }\n\
             pub fn poke_ok(&mut self, i: usize) { self.cells[i] += 1; self.sum_cache = None; }\n\
         }\n"
        .to_string(),
    )]);
    let diags = cachecheck::check(&ws, &fixture_spec());
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.code, diag::SEM_CACHE_INCOHERENT);
    assert!(d.message.contains("`Grid::poke`"), "{}", d.message);
    assert!(!d.message.contains("poke_ok"), "{}", d.message);
}

#[test]
fn pl061_real_workspace_is_clean() {
    // The actual Crossbar (crates/reram) must satisfy its plane_cache
    // invariant method-by-method. This is the static twin of the dynamic
    // differential test in crossbar.rs.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("workspace loads");
    let diags = cachecheck::check(&ws, &cachecheck::default_specs());
    assert!(
        diags.is_empty(),
        "PL061 findings on the real tree: {diags:?}"
    );
}
