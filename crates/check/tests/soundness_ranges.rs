//! Soundness of the PL04x interval abstract interpretation: every value a
//! real forward/backward execution produces must lie inside the interval
//! the analysis predicted for that layer.
//!
//! This is the property that makes the PL040/PL041/PL043 verdicts *proofs*
//! rather than heuristics. The harness executes the exact network the
//! analysis reasoned about ([`absint::build_for_analysis`] — same seed,
//! same quantized weights) on ≥1000 random inputs across three executable
//! zoo networks, checking three quantity classes per sample:
//!
//! * forward activations (per-layer min/max from `forward_traced`),
//! * backpropagated errors (per-layer min/max from `backward_traced`),
//! * per-sample weight/bias gradient partials (the `ΔW` the accelerator
//!   buffers per image).
//!
//! Tightness (worst observed magnitude / predicted bound) is *reported*
//! via `--nocapture`, never asserted — interval arithmetic is allowed to
//! be loose, it is not allowed to be wrong.

use pipelayer::PipeLayerConfig;
use pipelayer_check::absint::{self, Interval};
use pipelayer_check::{diag, shape, verify};
use pipelayer_nn::spec::NetSpec;
use pipelayer_nn::zoo;
use pipelayer_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Tightness metrics for one quantity class (reported, not asserted).
#[derive(Default)]
struct Tightness {
    observed: f64,
    predicted: f64,
}

impl Tightness {
    fn update(&mut self, observed: f64, predicted: f64) {
        if observed > self.observed {
            self.observed = observed;
            self.predicted = predicted;
        }
    }

    fn ratio(&self) -> f64 {
        if self.predicted > 0.0 {
            self.observed / self.predicted
        } else {
            0.0
        }
    }
}

/// Runs `samples` random forward/backward executions of `spec`'s analysis
/// network and asserts every concrete value lies inside the predicted
/// intervals. Returns the number of executions performed.
fn assert_sound(spec: &NetSpec, samples: usize, seed: u64) -> usize {
    let cfg = PipeLayerConfig::default();
    let shapes = shape::infer(spec);
    assert!(shapes.is_clean(), "{}", spec.name);
    let mut net = absint::build_for_analysis(spec, &cfg)
        .unwrap_or_else(|| panic!("{} must be executable", spec.name));
    let report = absint::analyze_network(&mut net, &shapes.layers, Interval::UNIT, &cfg)
        .unwrap_or_else(|| panic!("{} must be analyzable", spec.name));
    assert!(report.value_domain);
    assert_eq!(report.stages.len(), net.len());

    let (c, h, w) = spec.input;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut act = Tightness::default();
    let mut del = Tightness::default();
    let mut grad = Tightness::default();

    for sample in 0..samples {
        let data: Vec<f32> = (0..c * h * w)
            .map(|_| rng.random_range(0.0f32..1.0))
            .collect();
        let input = Tensor::from_vec(&[c, h, w], data);

        let (output, fwd) = net.forward_traced(&input);
        for (i, &(lo, hi)) in fwd.iter().enumerate() {
            let stage = &report.stages[i];
            for v in [f64::from(lo), f64::from(hi)] {
                assert!(
                    stage.activation.contains(v),
                    "{} sample {sample} stage {i} ({}): activation {v} outside {}",
                    spec.name,
                    stage.name,
                    stage.activation
                );
            }
            act.update(f64::from(lo.abs().max(hi.abs())), stage.activation.mag());
        }

        let target = rng.random_range(0..output.numel());
        let (_, delta) = net.loss().loss_and_delta(&output, target);
        for layer in net.layers_mut() {
            layer.zero_grad(); // isolate this sample's ΔW partials
        }
        let (_, bwd) = net.backward_traced(&delta);
        for (i, &(lo, hi)) in bwd.iter().enumerate() {
            let stage = &report.stages[i];
            for v in [f64::from(lo), f64::from(hi)] {
                assert!(
                    stage.delta.contains(v),
                    "{} sample {sample} stage {i} ({}): delta {v} outside {}",
                    spec.name,
                    stage.name,
                    stage.delta
                );
            }
            del.update(f64::from(lo.abs().max(hi.abs())), stage.delta.mag());
        }

        for (i, layer) in net.layers_mut().iter_mut().enumerate() {
            let Some(grads) = layer.grads_mut() else {
                continue;
            };
            let stage = &report.stages[i];
            for (tensor, bound, what) in [
                (&*grads.dweight, stage.dweight_mag, "dW"),
                (&*grads.dbias, stage.dbias_mag, "db"),
            ] {
                let worst = tensor
                    .as_slice()
                    .iter()
                    .fold(0f64, |m, &v| m.max(f64::from(v.abs())));
                assert!(
                    worst <= bound,
                    "{} sample {sample} stage {i} ({}): |{what}| {worst} exceeds bound {bound}",
                    spec.name,
                    stage.name,
                );
                grad.update(worst, bound);
            }
        }
    }

    println!(
        "{}: {samples} executions sound; tightness (observed/bound) \
         activations {:.3}, deltas {:.3}, gradients {:.3}",
        spec.name,
        act.ratio(),
        del.ratio(),
        grad.ratio()
    );
    samples
}

/// ≥1000 executions across three structurally different networks (MLP,
/// LeNet-style conv net, the deep C-4) with zero out-of-interval values.
#[test]
fn concrete_executions_stay_inside_predicted_intervals() {
    let mut total = 0;
    total += assert_sound(&zoo::spec_mnist_a(), 600, 0x5eed_0001);
    total += assert_sound(&zoo::spec_mnist_0(), 200, 0x5eed_0002);
    total += assert_sound(&zoo::spec_c4(), 200, 0x5eed_0003);
    assert!(total >= 1000, "only {total} executions");
}

/// The paper-default configuration range-verifies clean on the whole zoo —
/// evaluation networks (value domain where executable, geometry elsewhere)
/// plus the Fig. 13 resolution-study set.
#[test]
fn paper_default_config_is_range_clean_on_the_whole_zoo() {
    let cfg = PipeLayerConfig::default();
    let mut specs = zoo::evaluation_specs();
    specs.extend([
        zoo::spec_m1(),
        zoo::spec_m2(),
        zoo::spec_m3(),
        zoo::spec_mc(),
        zoo::spec_c4(),
    ]);
    for spec in specs {
        let diags = verify(&spec, &cfg);
        let range_errors: Vec<_> = diags
            .iter()
            .filter(|d| d.code >= "PL040" && d.code <= "PL043")
            .collect();
        assert!(range_errors.is_empty(), "{}: {range_errors:?}", spec.name);
    }
}

/// An intentionally under-width datapath (8-bit words, 20-bit accumulator,
/// ±16 activation range) is caught on C-4 with PL040 and PL042 at the
/// layers that actually overflow.
#[test]
fn under_width_datapath_is_flagged_at_the_offending_layers() {
    let mut cfg = PipeLayerConfig::default();
    cfg.params.data_bits = 8;
    cfg.datapath.accumulator_bits = 20;
    cfg.datapath.activation_absmax = 16.0;
    let diags = verify(&zoo::spec_c4(), &cfg);

    // Accumulator: conv1 (10 rows, 19 bits) fits in 20; the second conv3x8
    // (73 rows, 22 bits) is the first mapped matrix that does not.
    let pl042: Vec<_> = diags
        .iter()
        .filter(|d| d.code == diag::RANGE_ACC_TOO_NARROW)
        .collect();
    assert!(!pl042.is_empty());
    assert!(pl042[0].location.contains("stage 2 (conv3x8)"), "{pl042:?}");

    // Activation range: the second conv3x8's bound (≈±17) is the first to
    // leave ±16, and only the causing stage is reported.
    let pl040: Vec<_> = diags
        .iter()
        .filter(|d| d.code == diag::RANGE_ACTIVATION_OVERFLOW)
        .collect();
    assert_eq!(pl040.len(), 1, "{pl040:?}");
    assert!(pl040[0].location.contains("stage 2 (conv3x8)"), "{pl040:?}");
}

/// PL041: a gradient range too narrow for C-4's first-conv ΔW partials is
/// reported, and at the right place.
#[test]
fn narrow_gradient_range_is_flagged() {
    let mut cfg = PipeLayerConfig::default();
    cfg.datapath.gradient_absmax = 1024.0 * 1024.0; // 2^20 < C-4's ≈1.9e6
    let diags = verify(&zoo::spec_c4(), &cfg);
    let pl041: Vec<_> = diags
        .iter()
        .filter(|d| d.code == diag::RANGE_GRADIENT_OVERFLOW)
        .collect();
    assert!(
        pl041
            .iter()
            .any(|d| d.location.contains("stage 0 (conv3x8)")),
        "{pl041:?}"
    );
}

/// PL043: a bias pushed beyond the representable range makes an output
/// unit saturate on every input in the domain.
#[test]
fn guaranteed_saturation_is_flagged() {
    let cfg = PipeLayerConfig::default();
    let spec = zoo::spec_mnist_a();
    let shapes = shape::infer(&spec);
    let mut net = absint::build_for_analysis(&spec, &cfg).expect("executable");
    // Push one bias of the first inner product far past activation_absmax:
    // that unit's output interval lies entirely above the clip point.
    for layer in net.layers_mut() {
        if let Some(params) = layer.params_mut() {
            params.bias.as_mut_slice()[0] = 4.0e6;
            break;
        }
    }
    let report = absint::analyze_network(&mut net, &shapes.layers, Interval::UNIT, &cfg)
        .expect("analyzable");
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.code == diag::RANGE_GUARANTEED_SATURATION),
        "{:?}",
        report.diags
    );
}
