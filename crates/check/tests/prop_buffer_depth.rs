//! Property: the paper's Fig. 8 buffer sizing is *exactly* sufficient.
//!
//! For a random pipeline of `L ≤ 16` weighted layers and any layer `l`, the
//! symbolic schedule with depth `2(L−l)+1` for buffer `d_l` is hazard-free,
//! while shrinking that single buffer to `2(L−l)` produces exactly one
//! stale-read diagnostic on that buffer — cross-checked against the
//! closed-form [`Analysis::buffer_depth`].

use pipelayer::analysis::Analysis;
use pipelayer_check::{diag, schedule, Severity};
use proptest::prelude::*;

fn stale_reads(diags: &[pipelayer_check::Diagnostic]) -> Vec<&pipelayer_check::Diagnostic> {
    diags
        .iter()
        .filter(|d| d.code == diag::SCHED_STALE_READ)
        .collect()
}

proptest! {
    #[test]
    fn paper_depth_is_hazard_free(l in 1usize..=16, b in 1usize..=8, batches in 1usize..=3) {
        let analysis = Analysis::new(l, b);
        let depths = schedule::paper_depths(l);
        for layer in 1..=l {
            prop_assert_eq!(depths[layer - 1], analysis.buffer_depth(layer));
        }
        let diags = schedule::check_training(l, b, &depths, batches);
        prop_assert!(
            !diags.iter().any(|d| d.severity == Severity::Error),
            "L={} B={}: {:?}", l, b, diags
        );
    }

    #[test]
    fn one_slot_short_is_exactly_one_stale_read(l in 2usize..=16, extra_b in 0usize..=4, layer in 1usize..=16) {
        // Shrinking d_layer from 2(L-layer)+1 to 2(L-layer) must break that
        // buffer and only that buffer. layer == L has depth 1 (shrinking it
        // to 0 is the separate PL013 case), so restrict to layer < L; and
        // the eviction needs the batch to keep streaming for a full buffer
        // wrap, so B must be at least the paper depth 2(L-layer)+1.
        let layer = 1 + (layer - 1) % (l - 1);
        let b = 2 * (l - layer) + 1 + extra_b;
        let analysis = Analysis::new(l, b);
        let mut depths = schedule::paper_depths(l);
        depths[layer - 1] = analysis.buffer_depth(layer) - 1;
        let diags = schedule::check_training(l, b, &depths, 2);
        let stale = stale_reads(&diags);
        prop_assert_eq!(stale.len(), 1, "L={} B={} layer={}: {:?}", l, b, layer, diags);
        let expected = format!("buffer d{layer}");
        prop_assert_eq!(stale[0].location.as_str(), expected.as_str());
        prop_assert!(!diags.iter().any(|d| d.code == diag::SCHED_ZERO_DEPTH));
    }

    #[test]
    fn symbolic_checker_agrees_with_cycle_accurate_sim(l in 1usize..=8, b in 1usize..=8, slack in -2i64..=2) {
        let sim = pipelayer::pipeline::PipelineSim::new(l, b);
        let sim_violations = sim.simulate_training(2, slack, 0).dependency_violations;
        let depths: Vec<usize> = schedule::paper_depths(l)
            .iter()
            .map(|&d| (d as i64 + slack).max(1) as usize)
            .collect();
        let stale = stale_reads(&schedule::check_training(l, b, &depths, 2)).len();
        prop_assert_eq!(
            sim_violations > 0,
            stale > 0,
            "L={} B={} slack={}: sim={} check={}", l, b, slack, sim_violations, stale
        );
    }
}
