//! Regression: every evaluation network verifies clean under the default
//! configuration, and deliberately broken workloads produce exactly the
//! expected `PL0xx` codes.

use pipelayer::granularity::default_granularity;
use pipelayer::PipeLayerConfig;
use pipelayer_check::{diag, has_errors, schedule, verify, verify_with, Overrides, Severity};
use pipelayer_nn::spec::{LayerSpec, NetSpec, PoolKind};
use pipelayer_nn::zoo;

#[test]
fn every_zoo_network_verifies_clean() {
    let cfg = PipeLayerConfig::default();
    for spec in zoo::evaluation_specs() {
        let diags = verify(&spec, &cfg);
        assert!(
            !has_errors(&diags),
            "{} should be clean, got: {}",
            spec.name,
            diags
                .iter()
                .map(|d| d.render())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn undersized_buffer_yields_stale_read_code() {
    let spec = zoo::alexnet();
    let l = spec.weighted_layers();
    let mut depths = schedule::paper_depths(l);
    depths[0] -= 1; // 2(L-1)+1 -> 2(L-1): one slot short
    let over = Overrides {
        depths: Some(depths),
        ..Overrides::default()
    };
    let diags = verify_with(&spec, &PipeLayerConfig::default(), &over);
    assert!(has_errors(&diags));
    let stale: Vec<_> = diags
        .iter()
        .filter(|d| d.code == diag::SCHED_STALE_READ)
        .collect();
    assert_eq!(stale.len(), 1, "{diags:?}");
    assert!(stale[0].location.contains("buffer d1"));
}

#[test]
fn over_replicated_granularity_yields_capacity_code() {
    // Force every conv layer to its max replication but slash the crossbar
    // budget: the mapping cannot fit.
    let spec = zoo::vgg(zoo::VggVariant::A);
    let g = default_granularity(&spec.resolve());
    let over = Overrides {
        granularity: Some(g),
        conv_xbar_budget: Some(64),
        ..Overrides::default()
    };
    let diags = verify_with(&spec, &PipeLayerConfig::default(), &over);
    assert!(diags
        .iter()
        .any(|d| d.code == diag::MAP_OVER_CAPACITY && d.severity == Severity::Error));
}

#[test]
fn conv_window_larger_than_input_yields_shape_code() {
    // 8x8 input -> conv3 (6x6) -> pool3/3 (2x2) -> conv3 cannot fit.
    let spec = NetSpec::new(
        "broken-shapes",
        (1, 8, 8),
        vec![
            LayerSpec::Conv {
                k: 3,
                c_out: 4,
                stride: 1,
                pad: 0,
            },
            LayerSpec::Pool {
                k: 3,
                stride: 3,
                kind: PoolKind::Max,
            },
            LayerSpec::Conv {
                k: 3,
                c_out: 8,
                stride: 1,
                pad: 0,
            },
        ],
    );
    let diags = verify(&spec, &PipeLayerConfig::default());
    assert!(has_errors(&diags));
    assert!(diags
        .iter()
        .any(|d| d.code == diag::SHAPE_WINDOW_TOO_BIG && d.location.contains("layer 2")));
    // Shape errors suppress the downstream schedule/mapping passes.
    assert!(!diags.iter().any(|d| d.code == diag::SCHED_STALE_READ));
}

#[test]
fn fc_mismatch_is_impossible_by_construction_but_zero_outputs_is_not() {
    let spec = NetSpec::new(
        "zero-out",
        (1, 4, 4),
        vec![LayerSpec::Fc { n_out: 8 }, LayerSpec::Fc { n_out: 0 }],
    );
    let diags = verify(&spec, &PipeLayerConfig::default());
    assert!(diags.iter().any(|d| d.code == diag::SHAPE_ZERO_OUTPUTS));
}

#[test]
fn bad_device_bits_yield_quant_codes_for_any_network() {
    let mut cfg = PipeLayerConfig::default();
    cfg.params.data_bits = 40; // > 32 spike slots, and 40 % 4 == 0
    let diags = verify(&zoo::spec_mnist_a(), &cfg);
    assert!(diags.iter().any(|d| d.code == diag::QUANT_SPIKE_OVERFLOW));
}

#[test]
fn json_rendering_is_well_formed_enough_to_grep() {
    let diags = verify(&zoo::spec_mnist_a(), &PipeLayerConfig::default());
    let json = pipelayer_check::render_json(&diags);
    assert!(json.starts_with('[') && json.ends_with(']'));
    for d in &diags {
        assert!(json.contains(d.code));
    }
}
