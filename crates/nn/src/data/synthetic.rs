//! Procedural stand-ins for MNIST and ImageNet.

use pipelayer_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, RngExt as _, SeedableRng};

/// A labelled image set.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// `[1, 28, 28]` images (or whatever shape the generator produced).
    pub images: Vec<Tensor>,
    /// Class labels, parallel to `images`.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

/// The synthetic 10-class MNIST replacement.
///
/// Each class `k` owns a fixed prototype built from 5 Gaussian "stroke
/// blobs"; a sample is the prototype translated by up to ±2 pixels with
/// additive pixel noise, clamped to `[0, 1]`. Classes are distinguishable by
/// blob layout (spatial structure, so convolutions help), but noise and
/// jitter keep the task non-trivial — quantizing a trained network's weights
/// measurably costs accuracy, which is what Fig. 13 needs.
#[derive(Debug, Clone)]
pub struct SyntheticMnist {
    /// Training split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
}

const SIDE: usize = 28;
const CLASSES: usize = 10;
const BLOBS: usize = 5;

/// Per-class prototype: Gaussian stroke blobs, partly *shared between
/// neighbouring classes* so the classes genuinely overlap — the task must
/// be hard enough that quantizing a trained network's weights costs
/// accuracy (Fig. 13 needs headroom to degrade into).
fn prototypes(seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    // A shared pool of stroke blobs reused across classes.
    let pool: Vec<(f32, f32, f32, f32)> = (0..12)
        .map(|_| {
            (
                rng.random_range(5.0..23.0), // cy
                rng.random_range(5.0..23.0), // cx
                rng.random_range(1.4..3.0),  // sigma
                rng.random_range(0.6..1.0),  // amplitude
            )
        })
        .collect();
    (0..CLASSES)
        .map(|k| {
            // Two shared blobs (overlapping neighbours) + three unique ones.
            let mut blobs = vec![pool[k % 12], pool[(k + 3) % 12]];
            for _ in 0..BLOBS - 2 {
                blobs.push((
                    rng.random_range(5.0..23.0),
                    rng.random_range(5.0..23.0),
                    rng.random_range(1.4..3.0),
                    rng.random_range(0.35..0.7),
                ));
            }
            Tensor::from_fn(&[1, SIDE, SIDE], |i| {
                let (y, x) = (i[1] as f32, i[2] as f32);
                blobs
                    .iter()
                    .map(|&(cy, cx, s, a)| {
                        let d2 = (y - cy).powi(2) + (x - cx).powi(2);
                        a * (-d2 / (2.0 * s * s)).exp()
                    })
                    .sum::<f32>()
                    .min(1.0)
            })
        })
        .collect()
}

fn sample(proto: &Tensor, rng: &mut impl Rng) -> Tensor {
    let dy = rng.random_range(-3i32..=3);
    let dx = rng.random_range(-3i32..=3);
    Tensor::from_fn(&[1, SIDE, SIDE], |i| {
        let sy = i[1] as i32 - dy;
        let sx = i[2] as i32 - dx;
        let base = if (0..SIDE as i32).contains(&sy) && (0..SIDE as i32).contains(&sx) {
            proto[[0, sy as usize, sx as usize]]
        } else {
            0.0
        };
        let noise: f32 = (rng.random::<f32>() - 0.5) * 0.9;
        (base + noise).clamp(0.0, 1.0)
    })
}

impl SyntheticMnist {
    /// Generates `n_train` + `n_test` samples with balanced classes,
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn generate(n_train: usize, n_test: usize, seed: u64) -> Self {
        assert!(
            n_train > 0 && n_test > 0,
            "need at least one sample per split"
        );
        let protos = prototypes(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut make = |n: usize| {
            let mut images = Vec::with_capacity(n);
            let mut labels = Vec::with_capacity(n);
            for i in 0..n {
                let class = i % CLASSES;
                images.push(sample(&protos[class], &mut rng));
                labels.push(class);
            }
            Dataset { images, labels }
        };
        SyntheticMnist {
            train: make(n_train),
            test: make(n_test),
        }
    }
}

/// Unlabeled random images of shape `[c, h, w]` in `[0, 1)`, for
/// timing-only workloads.
pub fn random_images(n: usize, c: usize, h: usize, w: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Tensor::uniform(&[c, h, w], 0.0, 1.0, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = SyntheticMnist::generate(20, 10, 7);
        let b = SyntheticMnist::generate(20, 10, 7);
        assert!(a.train.images[3].allclose(&b.train.images[3], 0.0));
        assert_eq!(a.test.labels, b.test.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticMnist::generate(10, 10, 1);
        let b = SyntheticMnist::generate(10, 10, 2);
        assert!(!a.train.images[0].allclose(&b.train.images[0], 1e-6));
    }

    #[test]
    fn balanced_classes() {
        let d = SyntheticMnist::generate(100, 50, 3);
        for class in 0..10 {
            let n = d.train.labels.iter().filter(|&&l| l == class).count();
            assert_eq!(n, 10, "class {class} unbalanced");
        }
    }

    #[test]
    fn pixels_in_unit_range() {
        let d = SyntheticMnist::generate(30, 10, 4);
        for img in &d.train.images {
            assert!(img.min() >= 0.0 && img.max() <= 1.0);
            assert_eq!(img.dims(), &[1, 28, 28]);
        }
    }

    #[test]
    fn classes_are_separable_by_prototype_distance() {
        // Nearest-prototype classification should already beat chance by a
        // wide margin — the learning task is well-posed.
        let seed = 5;
        let protos = prototypes(seed);
        let d = SyntheticMnist::generate(100, 100, seed);
        let mut correct = 0;
        for (img, &label) in d.test.images.iter().zip(&d.test.labels) {
            let mut best = (f32::INFINITY, 0usize);
            for (k, p) in protos.iter().enumerate() {
                let dist = (img - p).norm_sq();
                if dist < best.0 {
                    best = (dist, k);
                }
            }
            if best.1 == label {
                correct += 1;
            }
        }
        assert!(
            correct >= 70,
            "only {correct}/100 nearest-prototype correct"
        );
    }

    #[test]
    fn random_images_shape() {
        let imgs = random_images(3, 3, 8, 8, 0);
        assert_eq!(imgs.len(), 3);
        assert_eq!(imgs[0].dims(), &[3, 8, 8]);
    }
}
