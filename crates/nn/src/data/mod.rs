//! Datasets.
//!
//! The paper trains on MNIST and ImageNet. Neither ships with this
//! reproduction, so we substitute procedurally generated equivalents
//! (documented in DESIGN.md §2):
//!
//! * [`SyntheticMnist`] — a 10-class, 28×28 grayscale task with per-class
//!   spatial prototypes, translation jitter and pixel noise. It is learnable
//!   by the Table 3 / Fig. 13 networks and — crucially for Fig. 13 — its
//!   accuracy degrades when weights are quantized, exercising the same code
//!   path as real MNIST.
//! * [`random_images`] — unlabeled random tensors for timing-only workloads
//!   (the ImageNet-scale models are timed, never scored).

mod synthetic;

pub use synthetic::{random_images, Dataset, SyntheticMnist};
