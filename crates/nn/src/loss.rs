//! Loss functions (Sec. 2.2): the L2-norm loss `J = ½‖y−t‖²` and the softmax
//! cross-entropy loss, both returning the output-layer error `δ_L` needed to
//! start the backward pass.

use pipelayer_tensor::Tensor;

/// Loss function selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Loss {
    /// `J(W,b) = ½‖y − t‖²` — the paper's L2-norm loss. `δ_L = y − t`
    /// (the `f'(u_L)` factor is applied by the preceding activation layer).
    L2,
    /// Softmax + cross-entropy, `J = −Σ 1(y_i = t) log p_i`. The combined
    /// gradient is the numerically stable `softmax(y) − onehot(t)`.
    #[default]
    SoftmaxCrossEntropy,
}

impl Loss {
    /// Computes the scalar loss and the error `δ` w.r.t. the network output
    /// for a single sample with class label `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target >= output.numel()` (through the slice bounds
    /// check; debug builds report the richer message below).
    pub fn loss_and_delta(&self, output: &Tensor, target: usize) -> (f32, Tensor) {
        let n = output.numel();
        debug_assert!(target < n, "target {target} out of range for {n} classes");
        match self {
            Loss::L2 => {
                let mut delta = output.clone();
                delta.as_mut_slice()[target] -= 1.0;
                let loss = 0.5 * delta.norm_sq();
                (loss, delta)
            }
            Loss::SoftmaxCrossEntropy => {
                let p = softmax(output);
                let loss = -(p.as_slice()[target].max(1e-12)).ln();
                let mut delta = p;
                delta.as_mut_slice()[target] -= 1.0;
                (loss, delta)
            }
        }
    }
}

/// Numerically stable softmax over a rank-1 tensor.
pub fn softmax(x: &Tensor) -> Tensor {
    let m = x.max();
    let exps = x.map(|v| (v - m).exp());
    let z = exps.sum();
    exps.map(|v| v / z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]));
        assert!((p.sum() - 1.0).abs() < 1e-6);
        assert!(p.as_slice()[2] > p.as_slice()[1]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let p = softmax(&Tensor::from_vec(&[2], vec![1000.0, 1001.0]));
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn l2_loss_and_delta() {
        let y = Tensor::from_vec(&[3], vec![0.2, 0.5, 0.3]);
        let (loss, delta) = Loss::L2.loss_and_delta(&y, 1);
        // t = (0,1,0); delta = y - t
        assert!(delta.allclose(&Tensor::from_vec(&[3], vec![0.2, -0.5, 0.3]), 1e-6));
        assert!((loss - 0.5 * (0.04 + 0.25 + 0.09)).abs() < 1e-6);
    }

    #[test]
    fn ce_delta_gradient_check() {
        let y = Tensor::from_vec(&[4], vec![0.1, -0.3, 0.7, 0.0]);
        let (_, delta) = Loss::SoftmaxCrossEntropy.loss_and_delta(&y, 2);
        let eps = 1e-3;
        for i in 0..4 {
            let mut yp = y.clone();
            yp.as_mut_slice()[i] += eps;
            let (lp, _) = Loss::SoftmaxCrossEntropy.loss_and_delta(&yp, 2);
            let mut ym = y.clone();
            ym.as_mut_slice()[i] -= eps;
            let (lm, _) = Loss::SoftmaxCrossEntropy.loss_and_delta(&ym, 2);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - delta.as_slice()[i]).abs() < 1e-3,
                "at {i}: {num} vs {}",
                delta.as_slice()[i]
            );
        }
    }

    #[test]
    fn ce_loss_lower_for_correct_prediction() {
        let confident = Tensor::from_vec(&[3], vec![5.0, 0.0, 0.0]);
        let (l_right, _) = Loss::SoftmaxCrossEntropy.loss_and_delta(&confident, 0);
        let (l_wrong, _) = Loss::SoftmaxCrossEntropy.loss_and_delta(&confident, 1);
        assert!(l_right < l_wrong);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target() {
        Loss::L2.loss_and_delta(&Tensor::zeros(&[3]), 3);
    }
}
