//! A from-scratch CNN training framework for the PipeLayer reproduction.
//!
//! PipeLayer (HPCA'17) accelerates *complete* deep-learning applications —
//! both the testing (inference) and the training phase with its weight
//! updates and data dependencies (Sec. 2.2 of the paper). To reproduce the
//! paper without Caffe or a GPU we need a real training framework: this crate
//! provides layers (convolution, pooling, inner product, ReLU), losses (L2
//! and softmax cross-entropy), mini-batch SGD with the paper's
//! accumulate-then-average weight-update semantics, the network zoo used in
//! the evaluation (AlexNet, VGG-A..E, the four MNIST networks of Table 3 and
//! the five resolution-study networks of Fig. 13), and procedurally generated
//! datasets standing in for MNIST/ImageNet.
//!
//! # Example: train a small MLP on the synthetic MNIST task
//!
//! ```
//! use pipelayer_nn::data::SyntheticMnist;
//! use pipelayer_nn::trainer::{Trainer, TrainConfig};
//! use pipelayer_nn::zoo;
//!
//! let data = SyntheticMnist::generate(600, 100, 42);
//! let mut net = zoo::mnist_a(1);
//! let report = Trainer::new(TrainConfig { epochs: 2, batch_size: 16, lr: 0.05, threads: 1 })
//!     .fit(&mut net, &data);
//! assert!(report.final_test_accuracy > 0.5);
//! ```

pub mod data;
pub mod init;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod optimizer;
pub mod serialize;
pub mod spec;
pub mod trainer;
pub mod zoo;

pub use layer::{Layer, LayerKind};
pub use loss::Loss;
pub use network::Network;
pub use optimizer::Optimizer;
pub use serialize::{CheckpointState, TrainCursor};
pub use spec::{LayerSpec, NetSpec};
pub use trainer::{CheckpointError, CheckpointPolicy, DeviceState, FitOutcome};
