//! Sequential network container with the batch-oriented training protocol of
//! Sec. 2.2 / 3.1: forward all layers, backward all layers accumulating
//! partial derivatives, apply the averaged update once per batch.

use crate::layer::Layer;
use crate::loss::Loss;
use pipelayer_tensor::Tensor;

/// A feed-forward network: an ordered stack of [`Layer`]s plus a [`Loss`].
///
/// # Example
///
/// ```
/// use pipelayer_nn::{Network, Loss};
/// use pipelayer_nn::layers::{Linear, Relu};
/// use pipelayer_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Network::new("tiny", Loss::SoftmaxCrossEntropy);
/// net.push(Linear::new(4, 8, &mut rng));
/// net.push(Relu::new());
/// net.push(Linear::new(8, 2, &mut rng));
/// let out = net.forward(&Tensor::ones(&[4]));
/// assert_eq!(out.dims(), &[2]);
/// ```
pub struct Network {
    name: String,
    layers: Vec<Box<dyn Layer>>,
    loss: Loss,
}

/// One sample's gradient contribution: a `(dweight, dbias)` snapshot per
/// parameterised layer, in layer order.
type SampleGrads = Vec<(Tensor, Tensor)>;

impl Network {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>, loss: Loss) -> Self {
        Network {
            name: name.into(),
            layers: Vec::new(),
            loss,
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Network name (e.g. `"Mnist-A"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured loss function.
    pub fn loss(&self) -> Loss {
        self.loss
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Mutable access to the layer stack (used by the quantization pass).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Layer access.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Total learnable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Training-mode forward pass (caches per-layer state).
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Training-mode forward pass that additionally records each layer's
    /// output value range, `(min, max)` per layer in layer order — the
    /// per-layer bound hook the range-analysis soundness harness compares
    /// against the abstract interpreter's predicted intervals.
    pub fn forward_traced(&mut self, input: &Tensor) -> (Tensor, Vec<(f32, f32)>) {
        let mut ranges = Vec::with_capacity(self.layers.len());
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
            ranges.push(value_range(&x));
        }
        (x, ranges)
    }

    /// Backward pass that records the value range of the error each layer
    /// propagates to its *input*, index-aligned with the layer stack (entry
    /// `i` is what layer `i`'s backward returned). Gradients accumulate as
    /// in [`backward`](Self::backward).
    pub fn backward_traced(&mut self, delta: &Tensor) -> (Tensor, Vec<(f32, f32)>) {
        let mut ranges = vec![(0.0f32, 0.0f32); self.layers.len()];
        let mut d = delta.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            d = layer.backward(&d);
            ranges[i] = value_range(&d);
        }
        (d, ranges)
    }

    /// Inference-mode forward pass (no caching, immutable).
    pub fn infer(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x);
        }
        x
    }

    /// Backward pass from an output-layer error; accumulates gradients.
    pub fn backward(&mut self, delta: &Tensor) -> Tensor {
        let mut d = delta.clone();
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(&d);
        }
        d
    }

    /// Predicted class (argmax of the output).
    pub fn predict(&self, input: &Tensor) -> usize {
        self.infer(input).argmax()
    }

    /// Runs one training mini-batch: forwards and backwards every sample
    /// (accumulating partial derivatives exactly as PipeLayer buffers
    /// `ΔW` per image), then applies the averaged update. Returns the mean
    /// loss over the batch.
    ///
    /// # Panics
    ///
    /// Panics if `images` and `labels` have different lengths or are empty.
    pub fn train_batch(&mut self, images: &[Tensor], labels: &[usize], lr: f32) -> f32 {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        assert!(!images.is_empty(), "empty batch");
        let mut total = 0.0;
        for (img, &label) in images.iter().zip(labels) {
            let out = self.forward(img);
            let (loss, delta) = self.loss.loss_and_delta(&out, label);
            total += loss;
            self.backward(&delta);
        }
        let b = images.len();
        for layer in &mut self.layers {
            layer.apply_update(lr, b);
        }
        total / b as f32
    }

    /// Like [`train_batch`](Self::train_batch) but with an external update
    /// rule (momentum / weight decay). `states` must be created by
    /// [`OptStates::for_network`] and reused across batches — it carries
    /// the velocity buffers.
    ///
    /// # Panics
    ///
    /// Panics on mismatched lengths, an empty batch, or states built for a
    /// different network.
    pub fn train_batch_opt(
        &mut self,
        images: &[Tensor],
        labels: &[usize],
        opt: &crate::optimizer::Optimizer,
        states: &mut OptStates,
    ) -> f32 {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        assert!(!images.is_empty(), "empty batch");
        let mut total = 0.0;
        for (img, &label) in images.iter().zip(labels) {
            let out = self.forward(img);
            let (loss, delta) = self.loss.loss_and_delta(&out, label);
            total += loss;
            self.backward(&delta);
        }
        let b = images.len();
        let mut si = 0usize;
        for layer in &mut self.layers {
            if let Some(g) = layer.grads_mut() {
                let (ws, bs) = states
                    .slots
                    .get_mut(si)
                    .expect("OptStates built for a smaller network");
                ws.apply(opt, g.weight, g.dweight, b, true);
                bs.apply(opt, g.bias, g.dbias, b, false);
                si += 1;
            }
            layer.zero_grad();
        }
        assert_eq!(si, states.slots.len(), "OptStates layer count mismatch");
        total / b as f32
    }

    /// Creates an independent replica for a worker thread: identical
    /// parameters, fresh gradient accumulators and forward caches.
    pub fn replica(&self) -> Network {
        Network {
            name: self.name.clone(),
            layers: self.layers.iter().map(|l| l.clone_box()).collect(),
            loss: self.loss,
        }
    }

    /// Forwards and backwards one sample, returning its loss and a snapshot
    /// of the per-layer gradients (accumulators are zeroed afterwards, so
    /// the snapshot is exactly this sample's contribution).
    fn sample_grads(&mut self, img: &Tensor, label: usize) -> (f32, SampleGrads) {
        let out = self.forward(img);
        let (loss, delta) = self.loss.loss_and_delta(&out, label);
        self.backward(&delta);
        let mut grads = Vec::new();
        for layer in &mut self.layers {
            if let Some(g) = layer.grads_mut() {
                grads.push((g.dweight.clone(), g.dbias.clone()));
            }
            layer.zero_grad();
        }
        (loss, grads)
    }

    /// Computes per-sample losses and gradient snapshots for a whole batch,
    /// fanning the samples out over `threads` scoped worker threads.
    ///
    /// Results come back indexed by sample regardless of which worker
    /// produced them, and each sample's gradient is computed by an identical
    /// op sequence on an identical parameter copy — so the returned vector
    /// is bitwise independent of `threads`. Workers write disjoint chunks of
    /// the slot vector; no locks are needed.
    fn collect_sample_grads(
        &mut self,
        images: &[Tensor],
        labels: &[usize],
        threads: usize,
    ) -> Vec<(f32, SampleGrads)> {
        let n = images.len();
        if threads <= 1 || n <= 1 {
            return images
                .iter()
                .zip(labels)
                .map(|(img, &label)| self.sample_grads(img, label))
                .collect();
        }
        let chunk = n.div_ceil(threads.min(n));
        let mut slots: Vec<Option<(f32, SampleGrads)>> = (0..n).map(|_| None).collect();
        let template = &*self;
        std::thread::scope(|s| {
            for ((imgs, labs), out) in images
                .chunks(chunk)
                .zip(labels.chunks(chunk))
                .zip(slots.chunks_mut(chunk))
            {
                s.spawn(move || {
                    let mut worker = template.replica();
                    for ((img, &label), slot) in imgs.iter().zip(labs).zip(out) {
                        *slot = Some(worker.sample_grads(img, label));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("worker left a sample slot unfilled"))
            .collect()
    }

    /// Sums the per-sample snapshots into the master accumulators in sample
    /// order (the fixed reduction order that makes training bitwise
    /// deterministic at any thread count) and returns the summed loss.
    fn reduce_sample_grads(&mut self, results: Vec<(f32, SampleGrads)>) -> f32 {
        let mut total = 0.0;
        for (loss, grads) in &results {
            total += loss;
            let mut gi = 0usize;
            for layer in &mut self.layers {
                if let Some(g) = layer.grads_mut() {
                    let (dw, db) = &grads[gi];
                    *g.dweight += dw;
                    *g.dbias += db;
                    gi += 1;
                }
            }
        }
        total
    }

    /// Data-parallel [`train_batch`](Self::train_batch): per-sample gradients
    /// are computed on `threads` worker replicas and reduced in sample order,
    /// so the result is bitwise identical to the serial path for any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `images` and `labels` have different lengths, are empty, or
    /// `threads == 0`.
    pub fn train_batch_parallel(
        &mut self,
        images: &[Tensor],
        labels: &[usize],
        lr: f32,
        threads: usize,
    ) -> f32 {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        assert!(!images.is_empty(), "empty batch");
        assert!(threads > 0, "threads must be non-zero");
        let results = self.collect_sample_grads(images, labels, threads);
        let total = self.reduce_sample_grads(results);
        let b = images.len();
        for layer in &mut self.layers {
            layer.apply_update(lr, b);
        }
        total / b as f32
    }

    /// Data-parallel [`train_batch_opt`](Self::train_batch_opt): same
    /// fan-out/fixed-order reduction as
    /// [`train_batch_parallel`](Self::train_batch_parallel), with the update
    /// applied through an external optimizer.
    ///
    /// # Panics
    ///
    /// Panics on mismatched lengths, an empty batch, `threads == 0`, or
    /// states built for a different network.
    pub fn train_batch_opt_parallel(
        &mut self,
        images: &[Tensor],
        labels: &[usize],
        opt: &crate::optimizer::Optimizer,
        states: &mut OptStates,
        threads: usize,
    ) -> f32 {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        assert!(!images.is_empty(), "empty batch");
        assert!(threads > 0, "threads must be non-zero");
        let results = self.collect_sample_grads(images, labels, threads);
        let total = self.reduce_sample_grads(results);
        let b = images.len();
        let mut si = 0usize;
        for layer in &mut self.layers {
            if let Some(g) = layer.grads_mut() {
                let (ws, bs) = states
                    .slots
                    .get_mut(si)
                    .expect("OptStates built for a smaller network");
                ws.apply(opt, g.weight, g.dweight, b, true);
                bs.apply(opt, g.bias, g.dbias, b, false);
                si += 1;
            }
            layer.zero_grad();
        }
        assert_eq!(si, states.slots.len(), "OptStates layer count mismatch");
        total / b as f32
    }

    /// Classification accuracy over a labelled set.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or are empty.
    pub fn accuracy(&self, images: &[Tensor], labels: &[usize]) -> f32 {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        assert!(!images.is_empty(), "empty evaluation set");
        let correct = images
            .iter()
            .zip(labels)
            .filter(|(img, label)| self.predict(img) == **label)
            .count();
        correct as f32 / images.len() as f32
    }
}

/// `(min, max)` over a tensor's elements.
fn value_range(t: &Tensor) -> (f32, f32) {
    t.as_slice()
        .iter()
        .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        })
}

/// Optimizer state (velocity buffers) for every parameterised layer of a
/// network, used with [`Network::train_batch_opt`].
#[derive(Debug, Clone, Default)]
pub struct OptStates {
    slots: Vec<(crate::optimizer::ParamState, crate::optimizer::ParamState)>,
}

impl OptStates {
    /// Allocates fresh state for `net`'s parameterised layers.
    pub fn for_network(net: &mut Network) -> Self {
        let mut n = 0usize;
        for layer in &mut net.layers {
            if layer.grads_mut().is_some() {
                n += 1;
            }
        }
        OptStates {
            slots: (0..n).map(|_| Default::default()).collect(),
        }
    }

    /// Exports every velocity buffer, two entries (weight, bias) per
    /// parameterised layer, in layer order — the PLW2 `OPTS` payload.
    pub fn export_velocities(&self) -> Vec<Option<pipelayer_tensor::Tensor>> {
        self.slots
            .iter()
            .flat_map(|(w, b)| [w.velocity().cloned(), b.velocity().cloned()])
            .collect()
    }

    /// Restores velocity buffers exported by
    /// [`export_velocities`](Self::export_velocities). Returns `false`
    /// (leaving the state untouched) when the entry count does not match
    /// this network's layer structure.
    pub fn import_velocities(&mut self, vel: Vec<Option<pipelayer_tensor::Tensor>>) -> bool {
        if vel.len() != self.slots.len() * 2 {
            return false;
        }
        let mut it = vel.into_iter();
        for (w, b) in &mut self.slots {
            w.set_velocity(it.next().flatten());
            b.set_velocity(it.next().flatten());
        }
        true
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.layers.iter().map(|l| l.name()).collect();
        write!(
            f,
            "Network({}, {} params, [{}])",
            self.name,
            self.param_count(),
            names.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new("xor", Loss::SoftmaxCrossEntropy);
        net.push(Linear::new(2, 8, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new(8, 2, &mut rng));
        net
    }

    #[test]
    fn learns_xor() {
        let mut net = xor_net(3);
        let images: Vec<Tensor> = [(0., 0.), (0., 1.), (1., 0.), (1., 1.)]
            .iter()
            .map(|&(a, b)| Tensor::from_vec(&[2], vec![a, b]))
            .collect();
        let labels = vec![0usize, 1, 1, 0];
        let mut last = f32::INFINITY;
        for _ in 0..600 {
            last = net.train_batch(&images, &labels, 0.5);
        }
        assert!(last < 0.1, "xor failed to converge, loss {last}");
        assert_eq!(net.accuracy(&images, &labels), 1.0);
    }

    #[test]
    fn infer_does_not_mutate() {
        let net = xor_net(4);
        let x = Tensor::from_vec(&[2], vec![1.0, 0.0]);
        let a = net.infer(&x);
        let b = net.infer(&x);
        assert!(a.allclose(&b, 0.0));
    }

    #[test]
    fn batch_update_equals_mean_of_gradients() {
        // Train on a batch of two identical samples vs one sample: the
        // averaged update must be identical.
        let mut net1 = xor_net(5);
        let mut net2 = xor_net(5);
        let x = Tensor::from_vec(&[2], vec![0.3, 0.7]);
        net1.train_batch(std::slice::from_ref(&x), &[1], 0.1);
        net2.train_batch(&[x.clone(), x.clone()], &[1, 1], 0.1);
        let y1 = net1.infer(&x);
        let y2 = net2.infer(&x);
        assert!(y1.allclose(&y2, 1e-5));
    }

    #[test]
    fn momentum_training_converges_faster_on_xor() {
        use crate::optimizer::Optimizer;
        let images: Vec<Tensor> = [(0., 0.), (0., 1.), (1., 0.), (1., 1.)]
            .iter()
            .map(|&(a, b)| Tensor::from_vec(&[2], vec![a, b]))
            .collect();
        let labels = vec![0usize, 1, 1, 0];

        let run = |momentum: f32| -> f32 {
            let mut net = xor_net(8);
            let opt = Optimizer::with_momentum(0.1, momentum);
            let mut states = OptStates::for_network(&mut net);
            let mut last = 0.0;
            for _ in 0..250 {
                last = net.train_batch_opt(&images, &labels, &opt, &mut states);
            }
            last
        };
        let plain = run(0.0);
        let momo = run(0.9);
        assert!(momo < plain, "momentum should help: {momo} vs {plain}");
    }

    #[test]
    fn plain_opt_matches_train_batch() {
        use crate::optimizer::Optimizer;
        let x = Tensor::from_vec(&[2], vec![0.4, -0.6]);
        let mut a = xor_net(9);
        let mut b = xor_net(9);
        a.train_batch(std::slice::from_ref(&x), &[1], 0.2);
        let mut states = OptStates::for_network(&mut b);
        b.train_batch_opt(
            std::slice::from_ref(&x),
            &[1],
            &Optimizer::sgd(0.2),
            &mut states,
        );
        assert!(a.infer(&x).allclose(&b.infer(&x), 1e-5));
    }

    #[test]
    fn debug_lists_layers() {
        let net = xor_net(6);
        let dbg = format!("{net:?}");
        assert!(dbg.contains("ip2-8") && dbg.contains("relu"));
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn rejects_empty_batch() {
        xor_net(7).train_batch(&[], &[], 0.1);
    }

    fn batch8() -> (Vec<Tensor>, Vec<usize>) {
        let images: Vec<Tensor> = (0..8)
            .map(|i| Tensor::from_vec(&[2], vec![(i as f32 * 0.37).sin(), (i as f32 * 0.61).cos()]))
            .collect();
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        (images, labels)
    }

    fn weight_bits(net: &mut Network) -> Vec<u32> {
        let mut bits = Vec::new();
        for layer in net.layers_mut() {
            if let Some(p) = layer.params_mut() {
                bits.extend(p.weight.as_slice().iter().map(|v| v.to_bits()));
                bits.extend(p.bias.as_slice().iter().map(|v| v.to_bits()));
            }
        }
        bits
    }

    #[test]
    fn replica_matches_original() {
        let net = xor_net(10);
        let rep = net.replica();
        let x = Tensor::from_vec(&[2], vec![0.2, -0.8]);
        let a = net.infer(&x);
        let b = rep.infer(&x);
        assert_eq!(
            a.as_slice()[0].to_bits(),
            b.as_slice()[0].to_bits(),
            "replica must be bitwise identical"
        );
        assert_eq!(net.param_count(), rep.param_count());
    }

    #[test]
    fn parallel_batch_is_bitwise_identical_to_serial() {
        let (images, labels) = batch8();
        let mut serial = xor_net(11);
        serial.train_batch(&images, &labels, 0.1);
        let serial_bits = weight_bits(&mut serial);
        for threads in [1usize, 2, 3, 8, 16] {
            let mut par = xor_net(11);
            par.train_batch_parallel(&images, &labels, 0.1, threads);
            assert_eq!(
                weight_bits(&mut par),
                serial_bits,
                "{threads}-thread batch diverged from serial"
            );
        }
    }

    #[test]
    fn parallel_opt_batch_is_bitwise_identical_to_serial() {
        use crate::optimizer::Optimizer;
        let (images, labels) = batch8();
        let opt = Optimizer::with_momentum(0.1, 0.9);
        let run = |threads: Option<usize>| -> Vec<u32> {
            let mut net = xor_net(12);
            let mut states = OptStates::for_network(&mut net);
            for _ in 0..3 {
                match threads {
                    None => net.train_batch_opt(&images, &labels, &opt, &mut states),
                    Some(t) => net.train_batch_opt_parallel(&images, &labels, &opt, &mut states, t),
                };
            }
            weight_bits(&mut net)
        };
        let serial = run(None);
        assert_eq!(serial, run(Some(1)), "1-thread diverged");
        assert_eq!(serial, run(Some(4)), "4-thread diverged");
    }

    #[test]
    fn parallel_loss_matches_serial_loss() {
        let (images, labels) = batch8();
        let mut a = xor_net(13);
        let mut b = xor_net(13);
        let la = a.train_batch(&images, &labels, 0.05);
        let lb = b.train_batch_parallel(&images, &labels, 0.05, 4);
        assert_eq!(la.to_bits(), lb.to_bits(), "losses must match bitwise");
    }

    #[test]
    fn traced_passes_match_untraced_and_record_ranges() {
        let mut traced = xor_net(15);
        let mut plain = xor_net(15);
        let x = Tensor::from_vec(&[2], vec![0.3, -0.9]);
        let (y_t, fwd) = traced.forward_traced(&x);
        let y_p = plain.forward(&x);
        assert!(y_t.allclose(&y_p, 0.0));
        assert_eq!(fwd.len(), 3);
        // ReLU output range is non-negative.
        assert!(fwd[1].0 >= 0.0);
        let d = Tensor::ones(&[2]);
        let (dx_t, bwd) = traced.backward_traced(&d);
        let dx_p = plain.backward(&d);
        assert!(dx_t.allclose(&dx_p, 0.0));
        assert_eq!(bwd.len(), 3);
        for (lo, hi) in fwd.iter().chain(&bwd) {
            assert!(lo <= hi);
        }
    }

    #[test]
    fn parallel_handles_more_threads_than_samples() {
        let mut net = xor_net(14);
        let x = Tensor::from_vec(&[2], vec![0.1, 0.9]);
        let loss = net.train_batch_parallel(std::slice::from_ref(&x), &[1], 0.1, 8);
        assert!(loss.is_finite());
    }
}
