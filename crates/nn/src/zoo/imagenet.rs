//! ImageNet-scale network descriptions: AlexNet \[13\] and the five VGG
//! configurations A–E \[10\]. These specs drive the timing/energy/area models;
//! they are never executed functionally (the paper likewise measures them on
//! the GPU and models them on PipeLayer).

use crate::spec::{LayerSpec, NetSpec, PoolKind};

const CONV3: fn(usize) -> LayerSpec = |c| LayerSpec::Conv {
    k: 3,
    c_out: c,
    stride: 1,
    pad: 1,
};
const CONV1: fn(usize) -> LayerSpec = |c| LayerSpec::Conv {
    k: 1,
    c_out: c,
    stride: 1,
    pad: 0,
};
const POOL2: LayerSpec = LayerSpec::Pool {
    k: 2,
    stride: 2,
    kind: PoolKind::Max,
};

/// AlexNet (one-tower formulation): 5 conv + 3 FC layers, 227×227×3 input.
pub fn alexnet() -> NetSpec {
    NetSpec::new(
        "AlexNet",
        (3, 227, 227),
        vec![
            LayerSpec::Conv {
                k: 11,
                c_out: 96,
                stride: 4,
                pad: 0,
            }, // -> 55x55
            LayerSpec::Pool {
                k: 3,
                stride: 2,
                kind: PoolKind::Max,
            }, // -> 27x27
            LayerSpec::Conv {
                k: 5,
                c_out: 256,
                stride: 1,
                pad: 2,
            }, // -> 27x27
            LayerSpec::Pool {
                k: 3,
                stride: 2,
                kind: PoolKind::Max,
            }, // -> 13x13
            LayerSpec::Conv {
                k: 3,
                c_out: 384,
                stride: 1,
                pad: 1,
            },
            LayerSpec::Conv {
                k: 3,
                c_out: 384,
                stride: 1,
                pad: 1,
            },
            LayerSpec::Conv {
                k: 3,
                c_out: 256,
                stride: 1,
                pad: 1,
            },
            LayerSpec::Pool {
                k: 3,
                stride: 2,
                kind: PoolKind::Max,
            }, // -> 6x6
            LayerSpec::Fc { n_out: 4096 },
            LayerSpec::Fc { n_out: 4096 },
            LayerSpec::Fc { n_out: 1000 },
        ],
    )
}

/// VGG configuration selector (Simonyan & Zisserman, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VggVariant {
    /// 8 conv layers.
    A,
    /// 10 conv layers.
    B,
    /// 13 conv layers, three of them 1×1.
    C,
    /// 13 conv layers, all 3×3.
    D,
    /// 16 conv layers.
    E,
}

impl VggVariant {
    /// All five variants in paper order.
    pub const ALL: [VggVariant; 5] = [
        VggVariant::A,
        VggVariant::B,
        VggVariant::C,
        VggVariant::D,
        VggVariant::E,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            VggVariant::A => "VGG-A",
            VggVariant::B => "VGG-B",
            VggVariant::C => "VGG-C",
            VggVariant::D => "VGG-D",
            VggVariant::E => "VGG-E",
        }
    }
}

/// Builds the requested VGG configuration over a 224×224×3 input.
pub fn vgg(variant: VggVariant) -> NetSpec {
    let mut layers: Vec<LayerSpec> = Vec::new();
    // Five conv blocks with channel widths 64,128,256,512,512.
    let widths = [64usize, 128, 256, 512, 512];
    for (block, &c) in widths.iter().enumerate() {
        let deep_block = block >= 2; // blocks 3..5 grow first in C/D/E
        let convs: Vec<LayerSpec> = match (variant, deep_block) {
            (VggVariant::A, _) => {
                if deep_block {
                    vec![CONV3(c), CONV3(c)]
                } else {
                    vec![CONV3(c)]
                }
            }
            (VggVariant::B, _) => vec![CONV3(c), CONV3(c)],
            (VggVariant::C, false) => vec![CONV3(c), CONV3(c)],
            (VggVariant::C, true) => vec![CONV3(c), CONV3(c), CONV1(c)],
            (VggVariant::D, false) => vec![CONV3(c), CONV3(c)],
            (VggVariant::D, true) => vec![CONV3(c), CONV3(c), CONV3(c)],
            (VggVariant::E, false) => vec![CONV3(c), CONV3(c)],
            (VggVariant::E, true) => vec![CONV3(c), CONV3(c), CONV3(c), CONV3(c)],
        };
        layers.extend(convs);
        layers.push(POOL2);
    }
    layers.push(LayerSpec::Fc { n_out: 4096 });
    layers.push(LayerSpec::Fc { n_out: 4096 });
    layers.push(LayerSpec::Fc { n_out: 1000 });
    NetSpec::new(variant.name(), (3, 224, 224), layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_geometry() {
        let spec = alexnet();
        let layers = spec.resolve();
        assert_eq!(spec.weighted_layers(), 8);
        assert_eq!(layers[0].out_shape, (96, 55, 55));
        assert_eq!(layers[0].post_pool_shape, (96, 27, 27));
        assert_eq!(layers[4].post_pool_shape, (256, 6, 6));
        assert_eq!(layers[5].matrix_rows, 256 * 6 * 6 + 1); // fc6
        assert_eq!(layers[7].matrix_cols, 1000);
    }

    #[test]
    fn alexnet_parameter_count_roughly_60m() {
        let n = alexnet().weight_count();
        assert!(
            (55_000_000..65_000_000).contains(&n),
            "AlexNet params {n} outside the canonical ~60M"
        );
    }

    #[test]
    fn vgg_conv_layer_counts() {
        let counts: Vec<usize> = VggVariant::ALL
            .iter()
            .map(|&v| vgg(v).resolve().iter().filter(|l| l.is_conv).count())
            .collect();
        assert_eq!(counts, vec![8, 10, 13, 13, 16]);
    }

    #[test]
    fn vgg_weighted_layer_totals() {
        // conv layers + 3 FC
        let totals: Vec<usize> = VggVariant::ALL
            .iter()
            .map(|&v| vgg(v).weighted_layers())
            .collect();
        assert_eq!(totals, vec![11, 13, 16, 16, 19]);
    }

    #[test]
    fn vgg_d_parameter_count_roughly_138m() {
        let n = vgg(VggVariant::D).weight_count();
        assert!(
            (130_000_000..145_000_000).contains(&n),
            "VGG-16 params {n} outside the canonical ~138M"
        );
    }

    #[test]
    fn vgg_spatial_pyramid() {
        let layers = vgg(VggVariant::A).resolve();
        // After the five pooled blocks the map is 512x7x7.
        let last_conv = layers.iter().rfind(|l| l.is_conv).unwrap();
        assert_eq!(last_conv.post_pool_shape, (512, 7, 7));
        let fc6 = layers.iter().find(|l| !l.is_conv).unwrap();
        assert_eq!(fc6.matrix_rows, 512 * 7 * 7 + 1);
    }

    #[test]
    fn vgg_c_has_1x1_convs() {
        let spec = vgg(VggVariant::C);
        let ones = spec
            .layers
            .iter()
            .filter(|l| matches!(l, LayerSpec::Conv { k: 1, .. }))
            .count();
        assert_eq!(ones, 3);
    }

    #[test]
    fn vgg_flops_ordering_matches_depth() {
        let ops: Vec<u64> = VggVariant::ALL
            .iter()
            .map(|&v| vgg(v).ops_forward())
            .collect();
        // A < B < C < D < E in forward cost.
        for w in ops.windows(2) {
            assert!(w[0] < w[1], "flops not increasing: {ops:?}");
        }
        // VGG-A forward ≈ 15.2 GFLOPs (2 ops/MAC convention, ~7.6 GMACs).
        assert!(
            (14.0e9..17.0e9).contains(&(ops[0] as f64)),
            "VGG-A flops {} out of expected range",
            ops[0]
        );
    }
}
