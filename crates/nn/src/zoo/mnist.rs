//! MNIST-scale networks.
//!
//! Table 3 of the paper defines four self-built MNIST benchmarks. In the
//! available text the hyper-parameter cells are OCR-damaged, so we document
//! our concrete instantiation (chosen to match the paper's prose: Mnist-A/B/C
//! are multilayer perceptrons of increasing depth/width — "Mnist-C is a
//! multilayer perceptron network whose weights are all matrices", Sec. 6.3 —
//! and Mnist-0 is the convolutional one, with the paper's `conv5x` notation):
//!
//! | Network | Hyper parameters                               |
//! |---------|------------------------------------------------|
//! | Mnist-A | 784-100-10                                     |
//! | Mnist-B | 784-300-100-10                                 |
//! | Mnist-C | 784-500-250-100-10                             |
//! | Mnist-0 | conv5x20, maxpool2, conv5x50, maxpool2, 500-10 |
//!
//! Fig. 13's resolution study uses five further networks: M-1, M-2, M-3
//! (perceptrons) and M-C, C-4 (convolutional, C-4 being the 4-conv-layer
//! model whose accuracy collapses below ≈4 bits).

use crate::loss::Loss;
use crate::network::Network;
use crate::spec::{LayerSpec, NetSpec, PoolKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MNIST_INPUT: (usize, usize, usize) = (1, 28, 28);

fn mlp(name: &str, hidden: &[usize]) -> NetSpec {
    let mut layers: Vec<LayerSpec> = hidden.iter().map(|&n| LayerSpec::Fc { n_out: n }).collect();
    layers.push(LayerSpec::Fc { n_out: 10 });
    NetSpec::new(name, MNIST_INPUT, layers)
}

/// Table 3 — Mnist-A: 784-100-10.
pub fn spec_mnist_a() -> NetSpec {
    mlp("Mnist-A", &[100])
}

/// Table 3 — Mnist-B: 784-300-100-10.
pub fn spec_mnist_b() -> NetSpec {
    mlp("Mnist-B", &[300, 100])
}

/// Table 3 — Mnist-C: 784-500-250-100-10.
pub fn spec_mnist_c() -> NetSpec {
    mlp("Mnist-C", &[500, 250, 100])
}

/// Table 3 — Mnist-0: conv5x20, pool2, conv5x50, pool2, ip-500, ip-10
/// (LeNet-style, the paper's `conv5xC` notation).
pub fn spec_mnist_0() -> NetSpec {
    NetSpec::new(
        "Mnist-0",
        MNIST_INPUT,
        vec![
            LayerSpec::Conv {
                k: 5,
                c_out: 20,
                stride: 1,
                pad: 0,
            },
            LayerSpec::Pool {
                k: 2,
                stride: 2,
                kind: PoolKind::Max,
            },
            LayerSpec::Conv {
                k: 5,
                c_out: 50,
                stride: 1,
                pad: 0,
            },
            LayerSpec::Pool {
                k: 2,
                stride: 2,
                kind: PoolKind::Max,
            },
            LayerSpec::Fc { n_out: 500 },
            LayerSpec::Fc { n_out: 10 },
        ],
    )
}

/// Fig. 13 — M-1: 784-100-10 perceptron.
pub fn spec_m1() -> NetSpec {
    mlp("M-1", &[100])
}

/// Fig. 13 — M-2: 784-300-10 perceptron.
pub fn spec_m2() -> NetSpec {
    mlp("M-2", &[300])
}

/// Fig. 13 — M-3: 784-500-150-10 perceptron.
pub fn spec_m3() -> NetSpec {
    mlp("M-3", &[500, 150])
}

/// Fig. 13 — M-C: small convolutional net (one conv stage + classifier).
pub fn spec_mc() -> NetSpec {
    NetSpec::new(
        "M-C",
        MNIST_INPUT,
        vec![
            LayerSpec::Conv {
                k: 5,
                c_out: 8,
                stride: 1,
                pad: 0,
            },
            LayerSpec::Pool {
                k: 2,
                stride: 2,
                kind: PoolKind::Max,
            },
            LayerSpec::Fc { n_out: 64 },
            LayerSpec::Fc { n_out: 10 },
        ],
    )
}

/// Fig. 13 — C-4: four convolution layers; the deepest of the resolution
/// study and the one most sensitive to cell resolution.
pub fn spec_c4() -> NetSpec {
    NetSpec::new(
        "C-4",
        MNIST_INPUT,
        vec![
            LayerSpec::Conv {
                k: 3,
                c_out: 8,
                stride: 1,
                pad: 1,
            },
            LayerSpec::Conv {
                k: 3,
                c_out: 8,
                stride: 1,
                pad: 1,
            },
            LayerSpec::Pool {
                k: 2,
                stride: 2,
                kind: PoolKind::Max,
            },
            LayerSpec::Conv {
                k: 3,
                c_out: 16,
                stride: 1,
                pad: 1,
            },
            LayerSpec::Conv {
                k: 3,
                c_out: 16,
                stride: 1,
                pad: 1,
            },
            LayerSpec::Pool {
                k: 2,
                stride: 2,
                kind: PoolKind::Max,
            },
            LayerSpec::Fc { n_out: 10 },
        ],
    )
}

/// The four Table 3 specs, in order.
pub fn mnist_net_specs() -> Vec<NetSpec> {
    vec![
        spec_mnist_a(),
        spec_mnist_b(),
        spec_mnist_c(),
        spec_mnist_0(),
    ]
}

fn built(spec: NetSpec, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    spec.build(Loss::SoftmaxCrossEntropy, &mut rng)
}

/// Functional, trainable Mnist-A.
pub fn mnist_a(seed: u64) -> Network {
    built(spec_mnist_a(), seed)
}

/// Functional, trainable Mnist-B.
pub fn mnist_b(seed: u64) -> Network {
    built(spec_mnist_b(), seed)
}

/// Functional, trainable Mnist-C.
pub fn mnist_c(seed: u64) -> Network {
    built(spec_mnist_c(), seed)
}

/// Functional, trainable Mnist-0.
pub fn mnist_0(seed: u64) -> Network {
    built(spec_mnist_0(), seed)
}

/// Functional, trainable M-1.
pub fn m1(seed: u64) -> Network {
    built(spec_m1(), seed)
}

/// Functional, trainable M-2.
pub fn m2(seed: u64) -> Network {
    built(spec_m2(), seed)
}

/// Functional, trainable M-3.
pub fn m3(seed: u64) -> Network {
    built(spec_m3(), seed)
}

/// Functional, trainable M-C.
pub fn mc(seed: u64) -> Network {
    built(spec_mc(), seed)
}

/// Functional, trainable C-4.
pub fn c4(seed: u64) -> Network {
    built(spec_c4(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_tensor::Tensor;

    #[test]
    fn table3_layer_counts() {
        assert_eq!(spec_mnist_a().weighted_layers(), 2);
        assert_eq!(spec_mnist_b().weighted_layers(), 3);
        assert_eq!(spec_mnist_c().weighted_layers(), 4);
        assert_eq!(spec_mnist_0().weighted_layers(), 4);
    }

    #[test]
    fn mnist_a_geometry() {
        let layers = spec_mnist_a().resolve();
        assert_eq!(layers[0].matrix_rows, 785);
        assert_eq!(layers[0].matrix_cols, 100);
        assert_eq!(layers[1].matrix_rows, 101);
        assert_eq!(layers[1].matrix_cols, 10);
    }

    #[test]
    fn mnist_0_is_lenet_shaped() {
        let layers = spec_mnist_0().resolve();
        assert_eq!(layers[0].out_shape, (20, 24, 24));
        assert_eq!(layers[1].post_pool_shape, (50, 4, 4));
        assert_eq!(layers[2].in_shape.0, 800);
    }

    #[test]
    fn mlps_have_no_convs() {
        for spec in [
            spec_mnist_a(),
            spec_mnist_b(),
            spec_mnist_c(),
            spec_m1(),
            spec_m2(),
            spec_m3(),
        ] {
            assert!(spec.is_mlp(), "{} should be an MLP", spec.name);
        }
        for spec in [spec_mnist_0(), spec_mc(), spec_c4()] {
            assert!(!spec.is_mlp(), "{} should be convolutional", spec.name);
        }
    }

    #[test]
    fn c4_has_four_conv_layers() {
        let convs = spec_c4().resolve().iter().filter(|l| l.is_conv).count();
        assert_eq!(convs, 4);
    }

    #[test]
    fn built_networks_run_forward() {
        let x = Tensor::zeros(&[1, 28, 28]);
        for net in [mnist_a(1), mc(1)] {
            assert_eq!(net.infer(&x).dims(), &[10]);
        }
    }
}
