//! The network zoo of the paper's evaluation (Sec. 6.1):
//!
//! * **ImageNet-scale** (timed, never executed functionally): AlexNet and
//!   VGG-A/B/C/D/E — see [`imagenet`].
//! * **MNIST-scale** (Table 3; executed functionally): Mnist-A, Mnist-B,
//!   Mnist-C, Mnist-0 — see [`mnist`].
//! * **Resolution-study networks** (Fig. 13): M-1, M-2, M-3 (MLPs) and
//!   M-C, C-4 (CNNs) — see [`mnist`].

pub mod imagenet;
pub mod mnist;

pub use imagenet::{alexnet, vgg, VggVariant};
pub use mnist::{
    c4, m1, m2, m3, mc, mnist_0, mnist_a, mnist_b, mnist_c, mnist_net_specs, spec_c4, spec_m1,
    spec_m2, spec_m3, spec_mc, spec_mnist_0, spec_mnist_a, spec_mnist_b, spec_mnist_c,
};

use crate::spec::NetSpec;

/// All ten evaluation networks of Fig. 15/16, in the paper's order.
pub fn evaluation_specs() -> Vec<NetSpec> {
    let mut v = vec![
        spec_mnist_a(),
        spec_mnist_b(),
        spec_mnist_c(),
        spec_mnist_0(),
        alexnet(),
    ];
    for variant in VggVariant::ALL {
        v.push(vgg(variant));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_evaluation_networks() {
        let specs = evaluation_specs();
        assert_eq!(specs.len(), 10);
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "Mnist-A", "Mnist-B", "Mnist-C", "Mnist-0", "AlexNet", "VGG-A", "VGG-B", "VGG-C",
                "VGG-D", "VGG-E"
            ]
        );
    }
}
