//! Optimizer configuration beyond plain SGD.
//!
//! The paper's update rule is plain mini-batch gradient descent (the
//! averaged `ΔW` of Sec. 4.4.2), which is what [`Layer::apply_update`]
//! implements. Real training recipes (the AlexNet/VGG baselines the paper
//! compares against) use momentum and weight decay; this module adds both
//! while keeping the accumulate-then-average batch protocol intact, so the
//! accelerator-side semantics are unchanged — momentum and decay fold into
//! the host-visible update value that gets written back to the arrays.
//!
//! [`Layer::apply_update`]: crate::Layer::apply_update

use pipelayer_tensor::Tensor;

/// Hyper-parameters of the update rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Optimizer {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient `μ` (0 = plain SGD).
    pub momentum: f32,
    /// L2 weight decay `λ` (applied to weights, not biases).
    pub weight_decay: f32,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer {
            lr: 0.05,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }
}

impl Optimizer {
    /// Plain SGD at the given rate.
    pub fn sgd(lr: f32) -> Self {
        Optimizer {
            lr,
            ..Optimizer::default()
        }
    }

    /// SGD with momentum.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= momentum < 1`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Optimizer {
            lr,
            momentum,
            ..Optimizer::default()
        }
    }

    /// Adds weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `wd` is negative.
    pub fn and_weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }
}

/// Per-parameter-tensor optimizer state (the velocity buffer).
#[derive(Debug, Clone, Default)]
pub struct ParamState {
    velocity: Option<Tensor>,
}

impl ParamState {
    /// Creates empty state.
    pub fn new() -> Self {
        ParamState::default()
    }

    /// The velocity buffer, if any update has materialised it.
    pub fn velocity(&self) -> Option<&Tensor> {
        self.velocity.as_ref()
    }

    /// Replaces the velocity buffer (checkpoint restore).
    pub fn set_velocity(&mut self, v: Option<Tensor>) {
        self.velocity = v;
    }

    /// Computes and applies the update for one parameter tensor given its
    /// accumulated gradient and the batch size; mutates the parameter in
    /// place. `decay` is applied only when the caller says so (weights yes,
    /// biases no).
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch or `batch` is zero.
    pub fn apply(
        &mut self,
        opt: &Optimizer,
        param: &mut Tensor,
        grad_acc: &Tensor,
        batch: usize,
        decay: bool,
    ) {
        assert!(batch > 0, "batch must be non-zero");
        assert_eq!(param.dims(), grad_acc.dims(), "shape mismatch");
        // Mean gradient plus optional L2 term.
        let mut g = grad_acc.map(|x| x / batch as f32);
        if decay && opt.weight_decay > 0.0 {
            g.axpy_inplace(opt.weight_decay, param);
        }
        if opt.momentum > 0.0 {
            let v = self
                .velocity
                .get_or_insert_with(|| Tensor::zeros(param.dims()));
            v.scale_inplace(opt.momentum);
            *v += &g;
            param.axpy_inplace(-opt.lr, v);
        } else {
            param.axpy_inplace(-opt.lr, &g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(w) = ½‖w‖² (gradient = w) and compare convergence.
    fn run(opt: Optimizer, steps: usize) -> f32 {
        let mut w = Tensor::full(&[4], 1.0);
        let mut state = ParamState::new();
        for _ in 0..steps {
            let g = w.clone(); // batch of 1, gradient = w
            state.apply(&opt, &mut w, &g, 1, false);
        }
        w.norm_sq()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(run(Optimizer::sgd(0.1), 50) < 1e-3);
    }

    #[test]
    fn momentum_accelerates_small_lr() {
        let plain = run(Optimizer::sgd(0.02), 40);
        let fast = run(Optimizer::with_momentum(0.02, 0.9), 40);
        assert!(
            fast < plain,
            "momentum should converge faster: {fast} vs {plain}"
        );
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut w = Tensor::full(&[3], 1.0);
        let mut state = ParamState::new();
        let opt = Optimizer::sgd(0.1).and_weight_decay(0.5);
        // Zero task gradient: only decay acts.
        let zero = Tensor::zeros(&[3]);
        for _ in 0..10 {
            state.apply(&opt, &mut w, &zero, 1, true);
        }
        assert!(w.norm_sq() < 3.0 * 0.6, "decay should shrink: {:?}", w);
    }

    #[test]
    fn decay_skipped_for_biases() {
        let mut b = Tensor::full(&[3], 1.0);
        let mut state = ParamState::new();
        let opt = Optimizer::sgd(0.1).and_weight_decay(0.5);
        let zero = Tensor::zeros(&[3]);
        state.apply(&opt, &mut b, &zero, 1, false);
        assert!(b.allclose(&Tensor::full(&[3], 1.0), 1e-6));
    }

    #[test]
    fn averaged_update_uses_batch_size() {
        let mut w = Tensor::zeros(&[1]);
        let mut state = ParamState::new();
        let grad_sum = Tensor::full(&[1], 8.0); // accumulated over batch 4
        state.apply(&Optimizer::sgd(1.0), &mut w, &grad_sum, 4, false);
        assert!((w.as_slice()[0] + 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn rejects_bad_momentum() {
        Optimizer::with_momentum(0.1, 1.5);
    }
}
