//! The [`Layer`] trait: forward, backward and the accumulate-then-average
//! weight-update protocol that mirrors PipeLayer's training support.
//!
//! PipeLayer stores the partial derivatives `ΔW_l` produced by each image of
//! a batch in memory subarrays and applies the *averaged* update only at the
//! end of the batch (Sec. 3.1, 4.4.2). The trait below encodes the same
//! protocol: `backward` accumulates gradients, `apply_update(lr, batch)`
//! divides by the batch size and writes the new weights.

use pipelayer_tensor::Tensor;

/// Mutable references to a layer's learnable state, used by the optimizer
/// and by the quantization stack (which overwrites weights with their
/// fixed-point images).
pub struct ParamsMut<'a> {
    /// Weight tensor (kernels or inner-product matrix).
    pub weight: &'a mut Tensor,
    /// Bias vector.
    pub bias: &'a mut Tensor,
}

/// Mutable references to a layer's parameters *and* their accumulated
/// gradients, for external update rules (momentum, weight decay — see
/// [`Optimizer`](crate::Optimizer)). The caller is responsible for
/// clearing the accumulators afterwards via [`Layer::zero_grad`].
pub struct GradsMut<'a> {
    /// Weight tensor.
    pub weight: &'a mut Tensor,
    /// Bias vector.
    pub bias: &'a mut Tensor,
    /// Accumulated weight gradient (sum over the batch so far).
    pub dweight: &'a mut Tensor,
    /// Accumulated bias gradient.
    pub dbias: &'a mut Tensor,
}

/// Structural classification of a layer for static analysis.
///
/// The interval abstract interpreter in `pipelayer-check` needs to know
/// which transfer function a layer applies — not how it is implemented.
/// Every concrete layer reports its kind; anything the analysis has no
/// sound transfer function for must report [`LayerKind::Opaque`], which
/// makes the analysis refuse (soundly) rather than guess.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerKind {
    /// A weighted affine map (inner product or convolution): bounds follow
    /// from ±Σ|w| aggregates over the parameter tensors.
    Affine,
    /// Element-wise `max(0, x)`.
    Relu,
    /// Element-wise logistic sigmoid.
    Sigmoid,
    /// Max pooling over `k×k` windows with stride `stride`.
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling over `k×k` windows with stride `stride`.
    AvgPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Pure shape change, values untouched.
    Flatten,
    /// Inverted dropout with drop probability `p` (training-mode forward
    /// scales survivors by `1/(1−p)`).
    Dropout {
        /// Drop probability.
        p: f32,
    },
    /// No sound transfer function is known; range analysis must give up.
    Opaque,
}

/// A differentiable network layer operating on single-image tensors.
///
/// Batching is performed by the [`Network`](crate::Network) driver, matching
/// the paper's architecture where one image flows through the pipeline per
/// logical cycle and batch effects exist only at weight-update time.
///
/// Implementations cache whatever forward state the backward pass needs
/// (inputs, pre-activations, pooling argmaxes), so `forward` must be called
/// before the matching `backward`.
///
/// The `Send + Sync` bounds let the data-parallel trainer share a template
/// network across worker threads and move per-thread replicas (created via
/// [`clone_box`](Self::clone_box)) into them.
pub trait Layer: Send + Sync {
    /// Human-readable layer kind, e.g. `"conv5x20"`.
    fn name(&self) -> String;

    /// Forward pass for one input sample; caches state for `backward`.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Inference-only forward pass: does not cache state.
    fn infer(&self, input: &Tensor) -> Tensor;

    /// Backward pass: consumes the error w.r.t. this layer's output and
    /// returns the error w.r.t. its input, accumulating any weight/bias
    /// gradients internally.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before `forward`.
    fn backward(&mut self, delta: &Tensor) -> Tensor;

    /// Applies the accumulated gradient: `W ← W − lr · (ΣΔW)/batch`, then
    /// clears the accumulator. No-op for parameterless layers.
    fn apply_update(&mut self, lr: f32, batch: usize);

    /// Clears accumulated gradients without applying them.
    fn zero_grad(&mut self);

    /// Learnable parameters, if any.
    fn params_mut(&mut self) -> Option<ParamsMut<'_>>;

    /// Parameters plus accumulated gradients, if any (for external
    /// optimizers). Default: none.
    fn grads_mut(&mut self) -> Option<GradsMut<'_>> {
        None
    }

    /// Number of learnable scalars.
    fn param_count(&self) -> usize {
        0
    }

    /// Structural classification for static analysis. The default is
    /// [`LayerKind::Opaque`] — the sound refusal — so a new layer type is
    /// never silently analysed with the wrong transfer function.
    fn kind(&self) -> LayerKind {
        LayerKind::Opaque
    }

    /// Creates an independent replica of this layer for a worker thread:
    /// learnable parameters are copied, gradient accumulators are zeroed and
    /// forward caches are fresh. Replicas of the same layer produce bitwise
    /// identical forward/backward results (stateful exceptions such as
    /// dropout's RNG document their behaviour).
    fn clone_box(&self) -> Box<dyn Layer>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn params_mut_exposes_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(4, 2, &mut rng);
        let p = l.params_mut().expect("linear has params");
        assert_eq!(p.weight.dims(), &[2, 4]);
        assert_eq!(p.bias.dims(), &[2]);
        assert_eq!(l.param_count(), 10);
    }
}
