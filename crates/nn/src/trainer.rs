//! Mini-batch SGD training loop with the paper's batch semantics: all
//! samples of a batch are processed against the same weights; the averaged
//! update is applied at the batch boundary (Sec. 3.1/3.3).

use crate::data::SyntheticMnist;
use crate::network::{Network, OptStates};
use crate::optimizer::Optimizer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Batch size `B` (the paper's default is 64; MNIST-scale runs here use
    /// smaller batches for speed).
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Worker threads for data-parallel batch execution. `0` means auto:
    /// the `PIPELAYER_THREADS` environment variable if set, otherwise the
    /// machine's available parallelism. Any thread count produces bitwise
    /// identical training results (the reduction order is fixed per sample).
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 16,
            lr: 0.05,
            threads: 0,
        }
    }
}

impl TrainConfig {
    /// The concrete worker-thread count `fit` will use: an explicit
    /// `threads` value wins, then `PIPELAYER_THREADS`, then the machine's
    /// available parallelism.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Some(n) = std::env::var("PIPELAYER_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the training split after the final epoch.
    pub final_train_accuracy: f32,
    /// Accuracy on the test split after the final epoch.
    pub final_test_accuracy: f32,
}

/// Drives training of a [`Network`] over a [`SyntheticMnist`] dataset.
#[derive(Debug, Clone, Default)]
pub struct Trainer {
    config: TrainConfig,
    optimizer: Option<Optimizer>,
}

impl Trainer {
    /// Creates a trainer with the given configuration (plain averaged SGD,
    /// the paper's update rule).
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            config,
            optimizer: None,
        }
    }

    /// Uses an explicit update rule (momentum / weight decay) instead of
    /// plain SGD; the rule's own learning rate replaces `config.lr`.
    pub fn with_optimizer(mut self, opt: Optimizer) -> Self {
        self.optimizer = Some(opt);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `net` and returns loss/accuracy history.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero epochs or batch size, or the dataset is
    /// empty.
    pub fn fit(&self, net: &mut Network, data: &SyntheticMnist) -> TrainReport {
        let cfg = &self.config;
        assert!(
            cfg.epochs > 0 && cfg.batch_size > 0,
            "degenerate train config"
        );
        assert!(!data.train.is_empty(), "empty training set");

        let n = data.train.len();
        let threads = cfg.resolved_threads();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(0xD1CE);
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        let mut states = self.optimizer.as_ref().map(|_| OptStates::for_network(net));

        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                let images: Vec<_> = chunk
                    .iter()
                    .map(|&i| data.train.images[i].clone())
                    .collect();
                let labels: Vec<_> = chunk.iter().map(|&i| data.train.labels[i]).collect();
                epoch_loss += match (&self.optimizer, &mut states) {
                    (Some(opt), Some(states)) => {
                        net.train_batch_opt_parallel(&images, &labels, opt, states, threads)
                    }
                    _ => net.train_batch_parallel(&images, &labels, cfg.lr, threads),
                };
                batches += 1;
            }
            epoch_losses.push(epoch_loss / batches as f32);
        }

        TrainReport {
            final_train_accuracy: net.accuracy(&data.train.images, &data.train.labels),
            final_test_accuracy: net.accuracy(&data.test.images, &data.test.labels),
            epoch_losses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn mlp_learns_synthetic_mnist() {
        let data = SyntheticMnist::generate(400, 100, 21);
        let mut net = zoo::mnist_a(21);
        let report = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 16,
            lr: 0.1,
            threads: 1,
        })
        .fit(&mut net, &data);
        assert!(
            report.final_test_accuracy > 0.85,
            "test accuracy too low: {}",
            report.final_test_accuracy
        );
        let first = report.epoch_losses.first().unwrap();
        let last = report.epoch_losses.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn conv_net_learns_synthetic_mnist() {
        let data = SyntheticMnist::generate(200, 50, 22);
        let mut net = zoo::mc(22);
        let report = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 10,
            lr: 0.05,
            threads: 1,
        })
        .fit(&mut net, &data);
        assert!(
            report.final_test_accuracy > 0.7,
            "conv test accuracy too low: {}",
            report.final_test_accuracy
        );
    }

    #[test]
    fn momentum_trainer_learns() {
        let data = SyntheticMnist::generate(300, 80, 23);
        let mut net = zoo::mnist_a(23);
        let report = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 0.0, // replaced by the optimizer's rate
            threads: 1,
        })
        .with_optimizer(Optimizer::with_momentum(0.05, 0.9))
        // (synthetic task with 300 samples and 3 epochs)
        .fit(&mut net, &data);
        assert!(
            report.final_test_accuracy > 0.6,
            "momentum run too weak: {}",
            report.final_test_accuracy
        );
        assert!(
            report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap(),
            "loss should fall"
        );
    }

    /// Satellite acceptance test: training Mnist-A at 1, 2 and 8 threads
    /// must yield bitwise-identical loss curves AND final weights.
    #[test]
    fn training_is_bitwise_deterministic_across_thread_counts() {
        let data = SyntheticMnist::generate(120, 30, 42);
        let run = |threads: usize| -> (Vec<u32>, Vec<u32>) {
            let mut net = zoo::mnist_a(42);
            let report = Trainer::new(TrainConfig {
                epochs: 2,
                batch_size: 16,
                lr: 0.1,
                threads,
            })
            .fit(&mut net, &data);
            let losses: Vec<u32> = report.epoch_losses.iter().map(|l| l.to_bits()).collect();
            let mut weights = Vec::new();
            for layer in net.layers_mut() {
                if let Some(p) = layer.params_mut() {
                    weights.extend(p.weight.as_slice().iter().map(|v| v.to_bits()));
                    weights.extend(p.bias.as_slice().iter().map(|v| v.to_bits()));
                }
            }
            (losses, weights)
        };
        let serial = run(1);
        let two = run(2);
        let eight = run(8);
        assert_eq!(serial.0, two.0, "2-thread loss curve diverged");
        assert_eq!(serial.0, eight.0, "8-thread loss curve diverged");
        assert_eq!(serial.1, two.1, "2-thread final weights diverged");
        assert_eq!(serial.1, eight.1, "8-thread final weights diverged");
    }

    #[test]
    fn resolved_threads_prefers_explicit_value() {
        let cfg = TrainConfig {
            threads: 3,
            ..Default::default()
        };
        assert_eq!(cfg.resolved_threads(), 3);
        let auto = TrainConfig::default();
        assert!(auto.resolved_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_zero_epochs() {
        let data = SyntheticMnist::generate(10, 10, 1);
        let mut net = zoo::mnist_a(1);
        Trainer::new(TrainConfig {
            epochs: 0,
            batch_size: 4,
            lr: 0.1,
            threads: 1,
        })
        .fit(&mut net, &data);
    }
}
