//! Mini-batch SGD training loop with the paper's batch semantics: all
//! samples of a batch are processed against the same weights; the averaged
//! update is applied at the batch boundary (Sec. 3.1/3.3).

use crate::data::SyntheticMnist;
use crate::network::{Network, OptStates};
use crate::optimizer::Optimizer;
use crate::serialize::{
    atomic_write, load_checkpoint, save_checkpoint, CheckpointState, DecodeError, TrainCursor,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Seed of the epoch-shuffle RNG stream (one stream for the whole run;
/// epoch `e`'s order is the state after `e + 1` Fisher–Yates passes, so a
/// resumed run replays the identical schedule).
const SHUFFLE_SEED: u64 = 0xD1CE;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Batch size `B` (the paper's default is 64; MNIST-scale runs here use
    /// smaller batches for speed).
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Worker threads for data-parallel batch execution. `0` means auto:
    /// the `PIPELAYER_THREADS` environment variable if set, otherwise the
    /// machine's available parallelism. Requests beyond the machine's
    /// available parallelism are clamped down — extra workers only add
    /// scheduling overhead, never throughput. Any thread count produces
    /// bitwise identical training results (the reduction order is fixed per
    /// sample), so the clamp cannot change a result, only save the waste.
    pub threads: usize,
}

/// How a [`TrainConfig`]'s thread request resolved — what was asked for,
/// what the trainer will actually spawn, and whether the oversubscription
/// clamp fired. Benchmarks record this so a JSON reader can tell a
/// "requested 8, ran 8" arm from a "requested 8, ran 4 (clamped)" arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadResolution {
    /// The pre-clamp request: explicit `threads`, else `PIPELAYER_THREADS`,
    /// else the machine's available parallelism.
    pub requested: usize,
    /// The worker count training actually uses (`min(requested, machine)`).
    pub effective: usize,
    /// `true` iff the request exceeded the machine and was clamped.
    pub clamped: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 16,
            lr: 0.05,
            threads: 0,
        }
    }
}

impl TrainConfig {
    /// The concrete worker-thread count `fit` will use: an explicit
    /// `threads` value wins, then `PIPELAYER_THREADS`, then the machine's
    /// available parallelism — and the winner is clamped to the machine's
    /// available parallelism (oversubscribing adds context-switch overhead
    /// without adding compute, and cannot change results because training is
    /// bitwise identical at any thread count).
    pub fn resolved_threads(&self) -> usize {
        self.resolve_threads().effective
    }

    /// Like [`resolved_threads`](Self::resolved_threads), but also reports
    /// what was requested and whether the oversubscription clamp fired, so
    /// benchmarks can record the decision.
    pub fn resolve_threads(&self) -> ThreadResolution {
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let requested = if self.threads > 0 {
            self.threads
        } else {
            std::env::var("PIPELAYER_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(machine)
        };
        ThreadResolution {
            requested,
            effective: requested.min(machine),
            clamped: requested > machine,
        }
    }
}

/// When and where [`Trainer::fit_resumable`] persists its state.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointPolicy {
    /// Checkpoint file (written atomically: temp + fsync + rename).
    pub path: PathBuf,
    /// Take a checkpoint every this many processed images (rounded up to
    /// the enclosing batch boundary).
    pub every_images: u64,
    /// Test/ops hook simulating a crash: after this many images are
    /// processed *by this call*, checkpoint and return
    /// [`FitOutcome::Interrupted`]. `None` trains to completion.
    pub stop_after_images: Option<u64>,
}

impl CheckpointPolicy {
    /// Checkpoints to `path` every `every_images` images, no kill point.
    /// A zero interval is rejected with [`CheckpointError::Config`] by the
    /// training call that uses the policy.
    pub fn every(path: impl Into<PathBuf>, every_images: u64) -> Self {
        CheckpointPolicy {
            path: path.into(),
            every_images,
            stop_after_images: None,
        }
    }
}

/// What a resumable training call produced.
#[derive(Debug, Clone, PartialEq)]
pub enum FitOutcome {
    /// Training ran to the configured epoch count.
    Completed(TrainReport),
    /// The `stop_after_images` kill point fired after checkpointing; call
    /// [`Trainer::resume_from`] to continue.
    Interrupted {
        /// Images processed by this call before stopping.
        images_seen: u64,
    },
}

/// Errors from resumable training.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the checkpoint file failed.
    Io(std::io::Error),
    /// The checkpoint file exists but does not decode against this network.
    Decode(DecodeError),
    /// The training setup itself is unusable: zero epochs or batch size,
    /// an empty training set, or a zero checkpoint interval.
    Config(&'static str),
    /// The attached [`DeviceState`] hook and the checkpoint's `WEAR`
    /// section disagree: the device rejected the blob, or the checkpoint
    /// carries no blob for a run that has a wearing device attached.
    Device(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::Decode(e) => write!(f, "checkpoint decode failed: {e}"),
            CheckpointError::Config(m) => write!(f, "invalid resumable-training setup: {m}"),
            CheckpointError::Device(m) => write!(f, "device-state restore failed: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<DecodeError> for CheckpointError {
    fn from(e: DecodeError) -> Self {
        CheckpointError::Decode(e)
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the training split after the final epoch.
    pub final_train_accuracy: f32,
    /// Accuracy on the test split after the final epoch.
    pub final_test_accuracy: f32,
}

/// A deterministic parameter-perturbation hook for noise-aware training:
/// before each batch's forward/backward passes the trainer hands every
/// parameter buffer to [`perturb`](BatchNoise::perturb), computes the
/// batch on the perturbed weights, and then *folds* the resulting update
/// back onto the clean weights — so gradients see the noise the inference
/// hardware will inject, but the learned parameters stay clean.
///
/// Implementations MUST be pure in `(buffer contents, layer, is_bias,
/// batch)` — no wall-clock or shared mutable state — or kill/resume and
/// thread-count determinism break. The device model backing the hook
/// lives downstream (the `pipelayer` crate's `ReramNoiseHook`); this crate
/// only defines the injection point.
pub trait BatchNoise: Send + Sync {
    /// Perturbs one parameter buffer in place. `layer` is the ordinal of
    /// the parameter-bearing layer, `is_bias` distinguishes its two
    /// buffers, and `batch` is the global batch index (stable across
    /// checkpoint/resume).
    fn perturb(&self, buf: &mut [f32], layer: usize, is_bias: bool, batch: u64);
}

/// A wearing device whose mutable state (wear counters, live fault map,
/// repair-ladder position) must ride along with checkpoints so a killed
/// run resumes from the device it actually had, not a pristine one. The
/// trainer only touches the hook at checkpoint-write and resume time — the
/// hot training loop never calls it. The blob is opaque to this crate; it
/// is carried verbatim in the PLW2 `WEAR` section.
///
/// The downstream implementor is the `pipelayer` crate's `ReramMlp`
/// (`device_state` / `restore_device_state`); this crate only defines the
/// injection point, mirroring [`BatchNoise`].
pub trait DeviceState: Send {
    /// Serialises the device's mutable state to an opaque blob.
    fn device_state(&self) -> Vec<u8>;

    /// Restores state captured by [`device_state`](Self::device_state).
    /// Returns `false` when the blob does not match this device (corrupt,
    /// truncated, or from a different geometry); the device may then be in
    /// a partially-restored state and must be rebuilt before use.
    fn restore_device_state(&mut self, blob: &[u8]) -> bool;
}

/// Locks a shared device, riding through a poisoned mutex: the state is a
/// plain byte-level snapshot, valid even if another thread panicked while
/// holding the lock.
fn lock_device<'a>(
    d: &'a Mutex<dyn DeviceState + 'static>,
) -> std::sync::MutexGuard<'a, dyn DeviceState + 'static> {
    match d.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Drives training of a [`Network`] over a [`SyntheticMnist`] dataset.
#[derive(Clone, Default)]
pub struct Trainer {
    config: TrainConfig,
    optimizer: Option<Optimizer>,
    noise: Option<Arc<dyn BatchNoise>>,
    device: Option<Arc<Mutex<dyn DeviceState>>>,
}

impl fmt::Debug for Trainer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trainer")
            .field("config", &self.config)
            .field("optimizer", &self.optimizer)
            .field("noise", &self.noise.as_ref().map(|_| "<BatchNoise>"))
            .field("device", &self.device.as_ref().map(|_| "<DeviceState>"))
            .finish()
    }
}

impl Trainer {
    /// Creates a trainer with the given configuration (plain averaged SGD,
    /// the paper's update rule).
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            config,
            optimizer: None,
            noise: None,
            device: None,
        }
    }

    /// Uses an explicit update rule (momentum / weight decay) instead of
    /// plain SGD; the rule's own learning rate replaces `config.lr`.
    pub fn with_optimizer(mut self, opt: Optimizer) -> Self {
        self.optimizer = Some(opt);
        self
    }

    /// Enables noise-aware training: every batch runs on weights perturbed
    /// by `noise` (see [`BatchNoise`]), with the update folded back onto
    /// the clean weights. Perturbation happens *before* the data-parallel
    /// section, so any thread count still produces bitwise-identical
    /// results, and the clean weights are what checkpoints persist —
    /// kill/resume replays exactly.
    pub fn with_noise(mut self, noise: Arc<dyn BatchNoise>) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Attaches a wearing device whose state is persisted into every
    /// checkpoint's `WEAR` section and restored on
    /// [`resume_from`](Self::resume_from) (see [`DeviceState`]). Resume
    /// fails with [`CheckpointError::Device`] if the checkpoint has no
    /// `WEAR` blob or the device rejects it.
    pub fn with_device_state(mut self, device: Arc<Mutex<dyn DeviceState>>) -> Self {
        self.device = Some(device);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `net` and returns loss/accuracy history.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero epochs or batch size, or the dataset is
    /// empty.
    pub fn fit(&self, net: &mut Network, data: &SyntheticMnist) -> TrainReport {
        let cfg = &self.config;
        assert!(
            cfg.epochs > 0 && cfg.batch_size > 0,
            "degenerate train config"
        );
        assert!(!data.train.is_empty(), "empty training set");
        match self.run_from(net, data, None, CheckpointState::default()) {
            Ok(FitOutcome::Completed(report)) => report,
            // Without a checkpoint policy there is no I/O and no kill point,
            // and the config was validated above.
            _ => unreachable!("policy-free run can neither fail nor interrupt"),
        }
    }

    /// Like [`fit`](Self::fit), but crash-safe: a PLW2 checkpoint (weights,
    /// optimizer velocities, RNG stream, epoch/image cursor) is written
    /// atomically every `policy.every_images` images. An uninterrupted
    /// `fit_resumable` run is bitwise identical to `fit`; a run killed at
    /// any checkpoint and continued with [`resume_from`](Self::resume_from)
    /// replays to bitwise-identical final weights.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if a checkpoint cannot be written,
    /// [`CheckpointError::Config`] on a degenerate config, empty dataset, or
    /// zero checkpoint interval.
    pub fn fit_resumable(
        &self,
        net: &mut Network,
        data: &SyntheticMnist,
        policy: &CheckpointPolicy,
    ) -> Result<FitOutcome, CheckpointError> {
        self.run_from(net, data, Some(policy), CheckpointState::default())
    }

    /// Continues a run from the checkpoint at `policy.path`: restores
    /// weights, velocities and the training cursor, replays the shuffle
    /// stream to the recorded position, and trains on — producing final
    /// weights bitwise identical to a never-interrupted run at any thread
    /// count.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the file cannot be read,
    /// [`CheckpointError::Decode`] if it is corrupt or does not match
    /// `net`'s architecture, [`CheckpointError::Config`] on a degenerate
    /// config, empty dataset, or zero checkpoint interval.
    pub fn resume_from(
        &self,
        net: &mut Network,
        data: &SyntheticMnist,
        policy: &CheckpointPolicy,
    ) -> Result<FitOutcome, CheckpointError> {
        let bytes = std::fs::read(&policy.path)?;
        let state = load_checkpoint(net, &bytes)?;
        match (&self.device, &state.wear) {
            // The guard performs the restore; a failed restore selects
            // this arm, a successful one falls through to the no-op arm.
            (Some(d), Some(blob)) if !lock_device(d).restore_device_state(blob) => {
                return Err(CheckpointError::Device(
                    "device rejected the checkpoint's WEAR blob",
                ));
            }
            (Some(_), None) => {
                return Err(CheckpointError::Device(
                    "checkpoint carries no WEAR section for the attached device",
                ));
            }
            // A WEAR blob with no device attached is skipped, like any
            // other section a reader does not understand.
            _ => {}
        }
        self.run_from(net, data, Some(policy), state)
    }

    /// The one training loop behind both [`fit`](Self::fit) (no `policy`:
    /// never touches the filesystem) and the resumable entry points.
    fn run_from(
        &self,
        net: &mut Network,
        data: &SyntheticMnist,
        policy: Option<&CheckpointPolicy>,
        start: CheckpointState,
    ) -> Result<FitOutcome, CheckpointError> {
        let cfg = &self.config;
        if cfg.epochs == 0 || cfg.batch_size == 0 {
            return Err(CheckpointError::Config("degenerate train config"));
        }
        if data.train.is_empty() {
            return Err(CheckpointError::Config("empty training set"));
        }
        if policy.is_some_and(|p| p.every_images == 0) {
            return Err(CheckpointError::Config(
                "checkpoint interval must be positive",
            ));
        }

        let n = data.train.len();
        let batches_per_epoch = n.div_ceil(cfg.batch_size) as u64;
        let threads = cfg.resolved_threads();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(SHUFFLE_SEED);

        let cursor = start.cursor.unwrap_or(TrainCursor {
            epoch: 0,
            images_done: 0,
            partial_loss_sum: 0.0,
            partial_batches: 0,
            epoch_losses: Vec::new(),
        });
        let start_epoch = cursor.epoch as usize;
        let mut epoch_losses = cursor.epoch_losses;

        let mut states = self.optimizer.as_ref().map(|_| OptStates::for_network(net));
        if let (Some(states), Some(vel)) = (&mut states, start.velocities) {
            let expected = states.export_velocities().len();
            let found = vel.len();
            if !states.import_velocities(vel) {
                return Err(DecodeError::CountMismatch { found, expected }.into());
            }
        }

        // Replay the shuffle stream up to the checkpointed epoch: each
        // Fisher–Yates pass consumes a fixed draw count, so the stream
        // position depends only on how many passes have run.
        for _ in 0..start_epoch {
            order.shuffle(&mut rng);
        }

        let mut images_this_call: u64 = 0;
        let mut since_ckpt: u64 = 0;

        for epoch in start_epoch..cfg.epochs {
            order.shuffle(&mut rng);
            let resuming = epoch == start_epoch;
            let mut epoch_loss = if resuming {
                cursor.partial_loss_sum
            } else {
                0.0
            };
            let mut batches = if resuming {
                cursor.partial_batches as usize
            } else {
                0
            };
            let mut done = if resuming { cursor.images_done } else { 0 };
            for chunk in order.chunks(cfg.batch_size).skip(batches) {
                let images: Vec<_> = chunk
                    .iter()
                    .map(|&i| data.train.images[i].clone())
                    .collect();
                let labels: Vec<_> = chunk.iter().map(|&i| data.train.labels[i]).collect();
                // Noise-aware training: perturb the weights before the
                // (data-parallel) batch, then fold the update back onto the
                // clean weights, so the checkpoint below always holds clean
                // parameters. The global batch index is stable across
                // kill/resume because `batches` starts at the cursor.
                let snaps = self.noise.as_ref().map(|hook| {
                    let global = epoch as u64 * batches_per_epoch + batches as u64;
                    apply_batch_noise(net, hook.as_ref(), global)
                });
                epoch_loss += match (&self.optimizer, &mut states) {
                    (Some(opt), Some(states)) => {
                        net.train_batch_opt_parallel(&images, &labels, opt, states, threads)
                    }
                    _ => net.train_batch_parallel(&images, &labels, cfg.lr, threads),
                };
                if let Some(snaps) = snaps {
                    fold_noisy_update(net, snaps);
                }
                batches += 1;
                done += chunk.len() as u64;
                images_this_call += chunk.len() as u64;
                since_ckpt += chunk.len() as u64;

                if let Some(policy) = policy {
                    let kill = policy
                        .stop_after_images
                        .is_some_and(|s| images_this_call >= s);
                    if since_ckpt >= policy.every_images || kill {
                        self.write_checkpoint(
                            net,
                            &mut states,
                            policy,
                            TrainCursor {
                                epoch: u32::try_from(epoch).unwrap_or(u32::MAX),
                                images_done: done,
                                partial_loss_sum: epoch_loss,
                                partial_batches: u32::try_from(batches).unwrap_or(u32::MAX),
                                epoch_losses: epoch_losses.clone(),
                            },
                        )?;
                        since_ckpt = 0;
                        if kill {
                            return Ok(FitOutcome::Interrupted {
                                images_seen: images_this_call,
                            });
                        }
                    }
                }
            }
            epoch_losses.push(epoch_loss / batches as f32);
        }

        // Final checkpoint: cursor at `epochs` marks the run complete, so a
        // spurious resume returns immediately instead of retraining.
        if let Some(policy) = policy {
            self.write_checkpoint(
                net,
                &mut states,
                policy,
                TrainCursor {
                    epoch: u32::try_from(cfg.epochs).unwrap_or(u32::MAX),
                    images_done: 0,
                    partial_loss_sum: 0.0,
                    partial_batches: 0,
                    epoch_losses: epoch_losses.clone(),
                },
            )?;
        }

        Ok(FitOutcome::Completed(TrainReport {
            final_train_accuracy: net.accuracy(&data.train.images, &data.train.labels),
            final_test_accuracy: net.accuracy(&data.test.images, &data.test.labels),
            epoch_losses,
        }))
    }

    fn write_checkpoint(
        &self,
        net: &mut Network,
        states: &mut Option<OptStates>,
        policy: &CheckpointPolicy,
        cursor: TrainCursor,
    ) -> Result<(), CheckpointError> {
        let state = CheckpointState {
            shuffle_seed: SHUFFLE_SEED,
            cursor: Some(cursor),
            velocities: states.as_ref().map(|s| s.export_velocities()),
            wear: self.device.as_ref().map(|d| lock_device(d).device_state()),
        };
        let blob = save_checkpoint(net, &state);
        atomic_write(&policy.path, &blob)?;
        Ok(())
    }
}

/// Perturbs every parameter buffer in place for batch `batch` and returns,
/// per buffer in traversal order, the `(clean, noisy)` snapshots
/// [`fold_noisy_update`] needs to restore clean weights afterwards.
fn apply_batch_noise(
    net: &mut Network,
    hook: &dyn BatchNoise,
    batch: u64,
) -> Vec<(Vec<f32>, Vec<f32>)> {
    let mut snaps = Vec::new();
    let mut ordinal = 0usize;
    for layer in net.layers_mut() {
        let Some(p) = layer.params_mut() else {
            continue;
        };
        for (buf, is_bias) in [
            (p.weight.as_mut_slice(), false),
            (p.bias.as_mut_slice(), true),
        ] {
            let clean = buf.to_vec();
            hook.perturb(buf, ordinal, is_bias, batch);
            snaps.push((clean, buf.to_vec()));
        }
        ordinal += 1;
    }
    snaps
}

/// Folds a noisy batch's update back onto the clean weights:
/// `w ← clean + (w_post − noisy)`. The gradient was computed on the noisy
/// weights (that is the point), but the *delta* it produced lands on the
/// clean parameters, so training state stays noise-free.
fn fold_noisy_update(net: &mut Network, snaps: Vec<(Vec<f32>, Vec<f32>)>) {
    let mut it = snaps.into_iter();
    for layer in net.layers_mut() {
        let Some(p) = layer.params_mut() else {
            continue;
        };
        for buf in [p.weight.as_mut_slice(), p.bias.as_mut_slice()] {
            // Snapshots were taken over the identical traversal, so the
            // iterator cannot run dry; skip defensively if it somehow does.
            let Some((clean, noisy)) = it.next() else {
                continue;
            };
            for ((w, c), nz) in buf.iter_mut().zip(&clean).zip(&noisy) {
                *w = c + (*w - nz);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn mlp_learns_synthetic_mnist() {
        let data = SyntheticMnist::generate(400, 100, 21);
        let mut net = zoo::mnist_a(21);
        let report = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 16,
            lr: 0.1,
            threads: 1,
        })
        .fit(&mut net, &data);
        assert!(
            report.final_test_accuracy > 0.85,
            "test accuracy too low: {}",
            report.final_test_accuracy
        );
        let first = report.epoch_losses.first().unwrap();
        let last = report.epoch_losses.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn conv_net_learns_synthetic_mnist() {
        let data = SyntheticMnist::generate(200, 50, 22);
        let mut net = zoo::mc(22);
        let report = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 10,
            lr: 0.05,
            threads: 1,
        })
        .fit(&mut net, &data);
        assert!(
            report.final_test_accuracy > 0.7,
            "conv test accuracy too low: {}",
            report.final_test_accuracy
        );
    }

    #[test]
    fn momentum_trainer_learns() {
        let data = SyntheticMnist::generate(300, 80, 23);
        let mut net = zoo::mnist_a(23);
        let report = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 0.0, // replaced by the optimizer's rate
            threads: 1,
        })
        .with_optimizer(Optimizer::with_momentum(0.05, 0.9))
        // (synthetic task with 300 samples and 3 epochs)
        .fit(&mut net, &data);
        assert!(
            report.final_test_accuracy > 0.6,
            "momentum run too weak: {}",
            report.final_test_accuracy
        );
        assert!(
            report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap(),
            "loss should fall"
        );
    }

    /// Satellite acceptance test: training Mnist-A at 1, 2 and 8 threads
    /// must yield bitwise-identical loss curves AND final weights.
    #[test]
    fn training_is_bitwise_deterministic_across_thread_counts() {
        let data = SyntheticMnist::generate(120, 30, 42);
        let run = |threads: usize| -> (Vec<u32>, Vec<u32>) {
            let mut net = zoo::mnist_a(42);
            let report = Trainer::new(TrainConfig {
                epochs: 2,
                batch_size: 16,
                lr: 0.1,
                threads,
            })
            .fit(&mut net, &data);
            let losses: Vec<u32> = report.epoch_losses.iter().map(|l| l.to_bits()).collect();
            let mut weights = Vec::new();
            for layer in net.layers_mut() {
                if let Some(p) = layer.params_mut() {
                    weights.extend(p.weight.as_slice().iter().map(|v| v.to_bits()));
                    weights.extend(p.bias.as_slice().iter().map(|v| v.to_bits()));
                }
            }
            (losses, weights)
        };
        let serial = run(1);
        let two = run(2);
        let eight = run(8);
        assert_eq!(serial.0, two.0, "2-thread loss curve diverged");
        assert_eq!(serial.0, eight.0, "8-thread loss curve diverged");
        assert_eq!(serial.1, two.1, "2-thread final weights diverged");
        assert_eq!(serial.1, eight.1, "8-thread final weights diverged");
    }

    #[test]
    fn resolved_threads_prefers_explicit_value() {
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let cfg = TrainConfig {
            threads: 3,
            ..Default::default()
        };
        assert_eq!(cfg.resolved_threads(), 3.min(machine));
        let auto = TrainConfig::default();
        assert!(auto.resolved_threads() >= 1);
    }

    /// Satellite regression: a request far beyond the machine's parallelism
    /// must clamp down instead of oversubscribing, and the resolution must
    /// say so. Auto (`threads: 0`) resolves to exactly the machine count and
    /// is never flagged as clamped.
    #[test]
    fn resolved_threads_clamps_oversubscription() {
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let greedy = TrainConfig {
            threads: machine * 64,
            ..Default::default()
        };
        let r = greedy.resolve_threads();
        assert_eq!(r.requested, machine * 64);
        assert_eq!(r.effective, machine, "oversubscribed request must clamp");
        assert!(r.clamped);

        let auto = TrainConfig::default().resolve_threads();
        assert_eq!(auto.effective, auto.requested.min(machine));
        assert!(auto.effective >= 1);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_zero_epochs() {
        let data = SyntheticMnist::generate(10, 10, 1);
        let mut net = zoo::mnist_a(1);
        Trainer::new(TrainConfig {
            epochs: 0,
            batch_size: 4,
            lr: 0.1,
            threads: 1,
        })
        .fit(&mut net, &data);
    }

    fn weight_bits(net: &mut Network) -> Vec<u32> {
        let mut bits = Vec::new();
        for layer in net.layers_mut() {
            if let Some(p) = layer.params_mut() {
                bits.extend(p.weight.as_slice().iter().map(|v| v.to_bits()));
                bits.extend(p.bias.as_slice().iter().map(|v| v.to_bits()));
            }
        }
        bits
    }

    fn ckpt_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("plw2-{name}-{}.ckpt", std::process::id()))
    }

    fn small_config(threads: usize) -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.1,
            threads,
        }
    }

    /// Runs a killed-and-resumed training to completion: the first call uses
    /// `fit_resumable` with a kill point; every continuation loads a FRESH
    /// network (proving all state really comes from the checkpoint file) and
    /// re-kills until the remaining work fits under the kill budget.
    fn run_with_kills(
        trainer: &Trainer,
        data: &SyntheticMnist,
        net_seed: u64,
        mut policy: CheckpointPolicy,
        kill_every: u64,
    ) -> (Vec<u32>, TrainReport) {
        policy.stop_after_images = Some(kill_every);
        let mut net = zoo::mnist_a(net_seed);
        let mut outcome = trainer.fit_resumable(&mut net, data, &policy).unwrap();
        let mut hops = 0;
        while let FitOutcome::Interrupted { images_seen } = outcome {
            assert!(images_seen >= kill_every, "kill fired early: {images_seen}");
            hops += 1;
            assert!(hops < 64, "resume loop is not making progress");
            net = zoo::mnist_a(net_seed.wrapping_add(hops)); // fresh, differently-seeded net
            outcome = trainer.resume_from(&mut net, data, &policy).unwrap();
        }
        assert!(hops > 0, "kill point never fired; test exercises nothing");
        let FitOutcome::Completed(report) = outcome else {
            unreachable!()
        };
        let _ = std::fs::remove_file(&policy.path);
        (weight_bits(&mut net), report)
    }

    /// Tentpole acceptance: an uninterrupted `fit_resumable` run is bitwise
    /// identical to plain `fit` — same loss curve, same final weights.
    #[test]
    fn uninterrupted_resumable_run_matches_fit_bitwise() {
        let data = SyntheticMnist::generate(96, 24, 31);
        let trainer = Trainer::new(small_config(2));
        let mut plain_net = zoo::mnist_a(31);
        let plain = trainer.fit(&mut plain_net, &data);

        let path = ckpt_path("uninterrupted");
        let mut res_net = zoo::mnist_a(31);
        let outcome = trainer
            .fit_resumable(&mut res_net, &data, &CheckpointPolicy::every(&path, 32))
            .unwrap();
        let _ = std::fs::remove_file(&path);
        let FitOutcome::Completed(report) = outcome else {
            panic!("run without a kill point must complete: {outcome:?}")
        };
        let bits = |v: &[f32]| v.iter().map(|l| l.to_bits()).collect::<Vec<u32>>();
        assert_eq!(
            bits(&plain.epoch_losses),
            bits(&report.epoch_losses),
            "loss curves diverged"
        );
        assert_eq!(
            weight_bits(&mut plain_net),
            weight_bits(&mut res_net),
            "final weights diverged"
        );
    }

    /// Tentpole acceptance: kill the run at an awkward (non-batch-aligned)
    /// image count, resume into a FRESH network, repeat until done — the
    /// final weights must be bitwise identical to a never-interrupted run,
    /// at every thread count.
    #[test]
    fn kill_and_resume_is_bitwise_identical_at_any_thread_count() {
        let data = SyntheticMnist::generate(96, 24, 37);
        for threads in [1usize, 2, 8] {
            let trainer = Trainer::new(small_config(threads));
            let mut ref_net = zoo::mnist_a(37);
            trainer.fit(&mut ref_net, &data);
            let reference = weight_bits(&mut ref_net);

            let path = ckpt_path(&format!("kill-{threads}t"));
            let policy = CheckpointPolicy::every(&path, 1_000_000);
            let (resumed, _) = run_with_kills(&trainer, &data, 37, policy, 41);
            assert_eq!(
                reference, resumed,
                "{threads}-thread kill-and-resume diverged from uninterrupted run"
            );
        }
    }

    /// Momentum velocities live in the OPTS checkpoint section; killing and
    /// resuming a momentum run must restore them exactly, or the very next
    /// update diverges.
    #[test]
    fn kill_and_resume_restores_momentum_velocities_bitwise() {
        let data = SyntheticMnist::generate(96, 24, 43);
        let opt = Optimizer::with_momentum(0.05, 0.9);
        let trainer = Trainer::new(small_config(2)).with_optimizer(opt);

        let mut ref_net = zoo::mnist_a(43);
        trainer.fit(&mut ref_net, &data);
        let reference = weight_bits(&mut ref_net);

        let path = ckpt_path("kill-momentum");
        let policy = CheckpointPolicy::every(&path, 1_000_000);
        let (resumed, report) = run_with_kills(&trainer, &data, 43, policy, 53);
        assert_eq!(
            reference, resumed,
            "momentum kill-and-resume diverged (velocities not restored?)"
        );
        assert_eq!(report.epoch_losses.len(), 2);
    }

    /// A pure, seedless stand-in for the downstream ReRAM noise hook: a
    /// splitmix-style hash of `(layer, is_bias, batch, index)` drives a
    /// small additive perturbation, so tests exercise the injection
    /// machinery without depending on the device model.
    struct TestNoise;

    impl BatchNoise for TestNoise {
        fn perturb(&self, buf: &mut [f32], layer: usize, is_bias: bool, batch: u64) {
            let salt = ((layer as u64) << 32) | ((is_bias as u64) << 16);
            for (i, w) in buf.iter_mut().enumerate() {
                let mut x = salt
                    ^ batch.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ (i as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
                x ^= x >> 33;
                x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
                x ^= x >> 29;
                let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
                *w += ((unit - 0.5) * 0.02) as f32;
            }
        }
    }

    /// Satellite acceptance: noise-aware training must stay bitwise
    /// deterministic at 1, 2 and 8 threads (perturbation happens before the
    /// data-parallel section), and must actually change the trajectory
    /// relative to a clean run.
    #[test]
    fn noise_aware_training_is_bitwise_deterministic_across_thread_counts() {
        let data = SyntheticMnist::generate(96, 24, 51);
        let run = |threads: usize, noisy: bool| -> Vec<u32> {
            let mut net = zoo::mnist_a(51);
            let mut trainer = Trainer::new(small_config(threads));
            if noisy {
                trainer = trainer.with_noise(Arc::new(TestNoise));
            }
            trainer.fit(&mut net, &data);
            weight_bits(&mut net)
        };
        let serial = run(1, true);
        assert_eq!(serial, run(2, true), "2-thread noisy run diverged");
        assert_eq!(serial, run(8, true), "8-thread noisy run diverged");
        assert_ne!(serial, run(1, false), "noise hook had no effect");
    }

    /// Kill/resume with noise-aware training on: the global batch index
    /// feeding the hook comes from the checkpoint cursor, so a killed and
    /// resumed noisy run must replay to bitwise-identical weights.
    #[test]
    fn noise_aware_kill_and_resume_is_bitwise_identical() {
        let data = SyntheticMnist::generate(96, 24, 53);
        let trainer = Trainer::new(small_config(2)).with_noise(Arc::new(TestNoise));
        let mut ref_net = zoo::mnist_a(53);
        trainer.fit(&mut ref_net, &data);
        let reference = weight_bits(&mut ref_net);

        let path = ckpt_path("kill-noise");
        let policy = CheckpointPolicy::every(&path, 1_000_000);
        let (resumed, _) = run_with_kills(&trainer, &data, 53, policy, 41);
        assert_eq!(
            reference, resumed,
            "noise-aware kill-and-resume diverged (batch index not replayed?)"
        );
    }

    /// A checkpoint whose cursor sits at `epochs` marks the run complete:
    /// resuming from it must return immediately with the stored history
    /// instead of training another pass.
    #[test]
    fn resume_on_completed_checkpoint_returns_without_retraining() {
        let data = SyntheticMnist::generate(64, 16, 47);
        let trainer = Trainer::new(small_config(1));
        let path = ckpt_path("completed");
        let policy = CheckpointPolicy::every(&path, 48);
        let mut net = zoo::mnist_a(47);
        let FitOutcome::Completed(first) = trainer.fit_resumable(&mut net, &data, &policy).unwrap()
        else {
            panic!("must complete")
        };
        let finished = weight_bits(&mut net);

        let mut fresh = zoo::mnist_a(48);
        let outcome = trainer.resume_from(&mut fresh, &data, &policy).unwrap();
        let _ = std::fs::remove_file(&path);
        let FitOutcome::Completed(again) = outcome else {
            panic!("completed checkpoint must resume to Completed")
        };
        assert_eq!(first.epoch_losses, again.epoch_losses, "history lost");
        assert_eq!(finished, weight_bits(&mut fresh), "weights changed");
    }

    /// A stand-in for the downstream wearing device: its whole state is one
    /// counter, serialised as 8 little-endian bytes. Anything else is
    /// rejected, exactly like `ReramMlp::restore_device_state` rejects a
    /// geometry-mismatched blob.
    struct MockDevice {
        counter: u64,
    }

    impl DeviceState for MockDevice {
        fn device_state(&self) -> Vec<u8> {
            self.counter.to_le_bytes().to_vec()
        }

        fn restore_device_state(&mut self, blob: &[u8]) -> bool {
            let Ok(bytes) = <[u8; 8]>::try_from(blob) else {
                return false;
            };
            self.counter = u64::from_le_bytes(bytes);
            true
        }
    }

    /// The WEAR section must carry the attached device's state into the
    /// checkpoint and back out on resume — and a mismatched blob must fail
    /// with `CheckpointError::Device`, not resume silently on a pristine
    /// device.
    #[test]
    fn device_state_rides_checkpoints_and_mismatches_fail_loudly() {
        let data = SyntheticMnist::generate(64, 16, 61);
        let device = Arc::new(Mutex::new(MockDevice { counter: 0xC0FFEE }));
        let shared: Arc<Mutex<dyn DeviceState>> = device.clone();
        let trainer = Trainer::new(small_config(1)).with_device_state(shared.clone());

        let path = ckpt_path("device-state");
        let mut policy = CheckpointPolicy::every(&path, 32);
        policy.stop_after_images = Some(16);
        let mut net = zoo::mnist_a(61);
        let outcome = trainer.fit_resumable(&mut net, &data, &policy).unwrap();
        assert!(matches!(outcome, FitOutcome::Interrupted { .. }));

        // Perturb the live device, then resume: the checkpointed counter
        // must win over the in-memory one.
        device.lock().unwrap().counter = 1;
        policy.stop_after_images = None;
        let mut fresh = zoo::mnist_a(62);
        trainer.resume_from(&mut fresh, &data, &policy).unwrap();
        assert_eq!(device.lock().unwrap().counter, 0xC0FFEE);

        // A checkpoint written WITHOUT a device must not resume into a
        // trainer that has one.
        let bare = Trainer::new(small_config(1));
        let mut net2 = zoo::mnist_a(63);
        let mut kill = CheckpointPolicy::every(&path, 32);
        kill.stop_after_images = Some(16);
        assert!(matches!(
            bare.fit_resumable(&mut net2, &data, &kill).unwrap(),
            FitOutcome::Interrupted { .. }
        ));
        let err = trainer.resume_from(&mut fresh, &data, &policy);
        assert!(
            matches!(err, Err(CheckpointError::Device(_))),
            "missing WEAR section must fail loudly: {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
