//! Inner-product (fully-connected) layer, Eq. (3) of the paper.

use crate::init;
use crate::layer::{GradsMut, Layer, LayerKind, ParamsMut};
use pipelayer_tensor::{ops, Tensor};
use rand::Rng;

/// An inner-product layer: `d_{l+1} = W d_l + b` with `W: [n_out × n_in]`.
///
/// This is the layer type that maps *directly* onto ReRAM crossbars — the
/// paper notes (Sec. 6.3) that MLPs such as Mnist-C achieve higher speedups
/// than AlexNet precisely because "weights are all matrices and can be
/// directly mapped to ReRAM arrays".
pub struct Linear {
    weight: Tensor, // [n_out, n_in]
    bias: Tensor,   // [n_out]
    dweight: Tensor,
    dbias: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates an inner-product layer with Xavier-uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(n_in: usize, n_out: usize, rng: &mut impl Rng) -> Self {
        assert!(n_in > 0 && n_out > 0, "invalid linear geometry");
        Linear {
            weight: init::xavier_uniform(&[n_out, n_in], n_in, n_out, rng),
            bias: Tensor::zeros(&[n_out]),
            dweight: Tensor::zeros(&[n_out, n_in]),
            dbias: Tensor::zeros(&[n_out]),
            cached_input: None,
        }
    }

    /// Input width.
    pub fn n_in(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Output width.
    pub fn n_out(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Read-only weight access.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }
}

impl Layer for Linear {
    fn name(&self) -> String {
        format!("ip{}-{}", self.n_in(), self.n_out())
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_input = Some(input.clone());
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.numel(),
            self.n_in(),
            "linear input size {} != {}",
            input.numel(),
            self.n_in()
        );
        let x = input.reshape(&[self.n_in()]);
        let mut y = ops::matvec(&self.weight, &x);
        y += &self.bias;
        y
    }

    fn backward(&mut self, delta: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("Linear::backward called before forward");
        let x = input.reshape(&[self.n_in()]);
        let d = delta.reshape(&[self.n_out()]);
        // ∂J/∂W = δ · dᵀ (Sec. 2.2); ∂J/∂b = δ.
        self.dweight += &ops::outer(&d, &x);
        self.dbias += &d;
        // δ_l = Wᵀ δ_{l+1}, reshaped back to the cached input's shape.
        let dx = ops::matvec_transposed(&self.weight, &d);
        dx.reshape(input.dims())
    }

    fn apply_update(&mut self, lr: f32, batch: usize) {
        assert!(batch > 0, "batch must be non-zero");
        let scale = -lr / batch as f32;
        self.weight.axpy_inplace(scale, &self.dweight);
        self.bias.axpy_inplace(scale, &self.dbias);
        self.zero_grad();
    }

    fn zero_grad(&mut self) {
        self.dweight.fill(0.0);
        self.dbias.fill(0.0);
    }

    fn params_mut(&mut self) -> Option<ParamsMut<'_>> {
        Some(ParamsMut {
            weight: &mut self.weight,
            bias: &mut self.bias,
        })
    }

    fn grads_mut(&mut self) -> Option<GradsMut<'_>> {
        Some(GradsMut {
            weight: &mut self.weight,
            bias: &mut self.bias,
            dweight: &mut self.dweight,
            dbias: &mut self.dbias,
        })
    }

    fn param_count(&self) -> usize {
        self.weight.numel() + self.bias.numel()
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Affine
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Linear {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            dweight: Tensor::zeros(self.dweight.dims()),
            dbias: Tensor::zeros(self.dbias.dims()),
            cached_input: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn probe_layer() -> Linear {
        let mut rng = StdRng::seed_from_u64(11);
        Linear::new(3, 2, &mut rng)
    }

    #[test]
    fn forward_is_affine() {
        let mut l = probe_layer();
        let zero = l.forward(&Tensor::zeros(&[3]));
        let x = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let y = l.forward(&x);
        let x2 = &x * 2.0;
        let y2 = l.forward(&x2);
        // f(2x) - f(0) == 2(f(x) - f(0)) for affine f.
        let lhs = &y2 - &zero;
        let rhs = &(&y - &zero) * 2.0;
        assert!(lhs.allclose(&rhs, 1e-5));
    }

    #[test]
    fn backward_gradient_check() {
        let mut l = probe_layer();
        let x = Tensor::from_vec(&[3], vec![0.5, -1.0, 2.0]);
        let y = l.forward(&x);
        let dx = l.backward(&y); // L = 0.5||y||²
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let lp = l.infer(&xp).norm_sq() * 0.5;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lm = l.infer(&xm).norm_sq() * 0.5;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dx.as_slice()[i]).abs() < 1e-2,
                "grad check failed at {i}: {num} vs {}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn accepts_spatial_input_and_restores_shape() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut l = Linear::new(12, 4, &mut rng);
        let x = Tensor::ones(&[3, 2, 2]);
        let y = l.forward(&x);
        assert_eq!(y.dims(), &[4]);
        let dx = l.backward(&y);
        assert_eq!(dx.dims(), &[3, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "input size")]
    fn rejects_wrong_input_size() {
        let mut l = probe_layer();
        l.forward(&Tensor::zeros(&[4]));
    }

    #[test]
    fn update_reduces_quadratic_loss() {
        let mut l = probe_layer();
        let x = Tensor::from_vec(&[3], vec![1.0, -1.0, 0.5]);
        for _ in 0..20 {
            let y = l.forward(&x);
            l.backward(&y);
            l.apply_update(0.1, 1);
        }
        assert!(l.infer(&x).norm_sq() < 1e-2, "should converge towards 0");
    }
}
