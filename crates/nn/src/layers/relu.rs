//! Rectified linear unit, the activation PipeLayer's activation component
//! implements by LUT (Sec. 4.2.3).

use crate::layer::{Layer, LayerKind, ParamsMut};
use pipelayer_tensor::Tensor;

/// Element-wise ReLU: `max(0, x)`.
///
/// The backward pass exploits the same identity the paper does (Sec. 4.3):
/// with ReLU, `f'(u_l) = f'(d_l)` — the derivative mask can be recovered from
/// the *outputs* `d_l`, so no pre-activation `u_l` needs to be stored. We
/// cache only the output sign mask.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Tensor>, // 1.0 where output > 0
}

impl Relu {
    /// Creates a ReLU activation layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> String {
        "relu".to_string()
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = self.infer(input);
        // f'(d): derivative recovered from the output, per Sec. 4.3.
        self.mask = Some(out.map(|x| if x > 0.0 { 1.0 } else { 0.0 }));
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, delta: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("Relu::backward called before forward");
        // δ_l = δ_{l+1} ∘ f'(d_l): an AND with the 0/1 mask (Fig. 10a).
        delta.hadamard(mask)
    }

    fn apply_update(&mut self, _lr: f32, _batch: usize) {}

    fn zero_grad(&mut self) {}

    fn params_mut(&mut self) -> Option<ParamsMut<'_>> {
        None
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Relu
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Relu::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]));
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_by_output_sign() {
        let mut r = Relu::new();
        r.forward(&Tensor::from_vec(&[4], vec![-1.0, 0.5, 2.0, -3.0]));
        let dx = r.backward(&Tensor::from_vec(&[4], vec![10.0, 10.0, 10.0, 10.0]));
        assert_eq!(dx.as_slice(), &[0.0, 10.0, 10.0, 0.0]);
    }

    #[test]
    fn zero_input_blocks_gradient() {
        // f'(0) = 0 in this implementation (mask requires output > 0).
        let mut r = Relu::new();
        r.forward(&Tensor::zeros(&[2]));
        let dx = r.backward(&Tensor::ones(&[2]));
        assert_eq!(dx.sum(), 0.0);
    }

    #[test]
    fn has_no_params() {
        let mut r = Relu::new();
        assert!(r.params_mut().is_none());
        assert_eq!(r.param_count(), 0);
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_requires_forward() {
        Relu::new().backward(&Tensor::ones(&[1]));
    }
}
