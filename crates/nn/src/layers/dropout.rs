//! Dropout regularisation (inverted dropout).
//!
//! AlexNet — one of the paper's evaluation networks — trains with dropout
//! on its large FC layers; the layer exists so those recipes can be
//! expressed. Dropout is a host-side training aid: at inference time it is
//! the identity (nothing maps to arrays), and during training it zeroes a
//! random mask of activations and rescales the survivors by `1/(1−p)`.

use crate::layer::{Layer, LayerKind, ParamsMut};
use pipelayer_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// Inverted dropout with drop probability `p`.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        Dropout {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> String {
        format!("dropout{:.2}", self.p)
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        if self.p == 0.0 {
            self.mask = Some(Tensor::ones(input.dims()));
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Tensor::from_fn(input.dims(), |_| {
            if self.rng.random::<f32>() < keep {
                scale
            } else {
                0.0
            }
        });
        let out = input.hadamard(&mask);
        self.mask = Some(mask);
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        // Identity at test time (inverted dropout pre-scales in training).
        input.clone()
    }

    fn backward(&mut self, delta: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("Dropout::backward called before forward");
        delta.hadamard(mask)
    }

    fn apply_update(&mut self, _lr: f32, _batch: usize) {}
    fn zero_grad(&mut self) {}
    fn params_mut(&mut self) -> Option<ParamsMut<'_>> {
        None
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Dropout { p: self.p }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        // Each replica restarts from the current RNG state, so a network
        // containing dropout is deterministic for a FIXED thread count but
        // not ACROSS thread counts (replicas draw overlapping streams). The
        // paper's evaluation networks reproduced here train without dropout;
        // the bitwise thread-count-invariance guarantee applies to them.
        Box::new(Dropout {
            p: self.p,
            rng: self.rng.clone(),
            mask: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let d = Dropout::new(0.5, 1);
        let x = Tensor::from_fn(&[32], |i| i[0] as f32);
        assert!(d.infer(&x).allclose(&x, 0.0));
    }

    #[test]
    fn training_preserves_expectation() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x);
        // Inverted dropout: E[y] = 1.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Dropped fraction near p.
        let dropped = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((dropped as f32 / 10_000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.3, 3);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x);
        let g = d.backward(&Tensor::ones(&[64]));
        // Gradient flows exactly where the forward survived.
        for (yo, go) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yo == 0.0, *go == 0.0);
        }
    }

    #[test]
    fn zero_p_is_identity_in_training() {
        let mut d = Dropout::new(0.0, 4);
        let x = Tensor::from_fn(&[8], |i| i[0] as f32);
        assert!(d.forward(&x).allclose(&x, 0.0));
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_p_one() {
        Dropout::new(1.0, 5);
    }
}
