//! Sigmoid activation — the other function the paper's activation
//! component supports ("configurable by different LUTs", Sec. 4.2.3).

use crate::layer::{Layer, LayerKind, ParamsMut};
use pipelayer_tensor::Tensor;

/// Element-wise logistic sigmoid `σ(x) = 1/(1+e^{-x})`.
///
/// The backward pass uses `σ'(x) = σ(x)(1−σ(x))`, recovered — like ReLU's
/// derivative — from the cached *output*, so no pre-activation storage is
/// needed.
#[derive(Debug, Default)]
pub struct Sigmoid {
    cached_out: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid activation layer.
    pub fn new() -> Self {
        Sigmoid { cached_out: None }
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> String {
        "sigmoid".to_string()
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = self.infer(input);
        self.cached_out = Some(out.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(|x| 1.0 / (1.0 + (-x).exp()))
    }

    fn backward(&mut self, delta: &Tensor) -> Tensor {
        let out = self
            .cached_out
            .as_ref()
            .expect("Sigmoid::backward called before forward");
        delta.zip_map(out, |d, o| d * o * (1.0 - o))
    }

    fn apply_update(&mut self, _lr: f32, _batch: usize) {}
    fn zero_grad(&mut self) {}
    fn params_mut(&mut self) -> Option<ParamsMut<'_>> {
        None
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Sigmoid
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Sigmoid::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_range_and_midpoint() {
        let s = Sigmoid::new();
        let y = s.infer(&Tensor::from_vec(&[3], vec![-10.0, 0.0, 10.0]));
        assert!(y.as_slice()[0] < 0.01);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 0.99);
    }

    #[test]
    fn gradient_check() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(&[4], vec![-1.5, -0.2, 0.3, 2.0]);
        let y = s.forward(&x);
        let dx = s.backward(&y); // L = 0.5||σ(x)||²
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let lp = s.infer(&xp).norm_sq() * 0.5;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lm = s.infer(&xm).norm_sq() * 0.5;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dx.as_slice()[i]).abs() < 1e-3,
                "at {i}: {num} vs {}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn matches_activation_unit_lut() {
        // The circuit-side LUT (pipelayer-reram) and this layer implement
        // the same function; spot-check agreement.
        let s = Sigmoid::new();
        let xs = [-3.0f32, -0.7, 0.0, 1.2, 3.5];
        for &x in &xs {
            let soft = s.infer(&Tensor::from_vec(&[1], vec![x])).as_slice()[0];
            let lut = 1.0 / (1.0 + (-x).exp());
            assert!((soft - lut).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_requires_forward() {
        Sigmoid::new().backward(&Tensor::ones(&[1]));
    }
}
