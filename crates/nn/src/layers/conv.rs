//! Convolution layer (Eq. 1 of the paper).

use crate::init;
use crate::layer::{GradsMut, Layer, LayerKind, ParamsMut};
use pipelayer_tensor::{ops, Tensor};
use rand::Rng;

/// A 2-D convolution layer with `C_out` kernels of size `C_in×K×K`.
///
/// Forward uses the im2col lowering (the same kernel-window serialisation
/// PipeLayer feeds its crossbars, Fig. 4); backward produces the input error
/// via `conv2(δ, rot180(K), 'full')` (Fig. 11) and the weight gradient via
/// the data-as-kernels convolution (Fig. 12), both implemented in
/// `pipelayer-tensor`.
///
/// # Example
///
/// ```
/// use pipelayer_nn::layers::Conv2d;
/// use pipelayer_nn::Layer;
/// use pipelayer_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new(1, 20, 5, 1, 0, &mut rng);
/// let out = conv.forward(&Tensor::zeros(&[1, 28, 28]));
/// assert_eq!(out.dims(), &[20, 24, 24]);
/// ```
pub struct Conv2d {
    weight: Tensor, // [C_out, C_in, K, K]
    bias: Tensor,   // [C_out]
    dweight: Tensor,
    dbias: Tensor,
    stride: usize,
    pad: usize,
    cached_input: Option<Tensor>,
    // im2col/GEMM buffers reused across every sample that flows through this
    // layer instance — forward and both backward passes allocate nothing
    // after the first sample.
    scratch: ops::ConvScratch,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal initialised kernels.
    ///
    /// # Panics
    ///
    /// Panics if any of `c_in`, `c_out`, `k` or `stride` is zero.
    pub fn new(
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            c_in > 0 && c_out > 0 && k > 0 && stride > 0,
            "invalid conv geometry"
        );
        let fan_in = c_in * k * k;
        Conv2d {
            weight: init::he_normal(&[c_out, c_in, k, k], fan_in, rng),
            bias: Tensor::zeros(&[c_out]),
            dweight: Tensor::zeros(&[c_out, c_in, k, k]),
            dbias: Tensor::zeros(&[c_out]),
            stride,
            pad,
            cached_input: None,
            scratch: ops::ConvScratch::new(),
        }
    }

    /// Kernel spatial size.
    pub fn kernel(&self) -> usize {
        self.weight.dims()[2]
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Read-only weight access.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        format!(
            "conv{}x{}", // paper notation: ConvKxC
            self.kernel(),
            self.weight.dims()[0]
        )
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = ops::conv2d_im2col_with(
            input,
            &self.weight,
            &self.bias,
            self.stride,
            self.pad,
            &mut self.scratch,
        );
        self.cached_input = Some(input.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        ops::conv2d_im2col(input, &self.weight, &self.bias, self.stride, self.pad)
    }

    fn backward(&mut self, delta: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("Conv2d::backward called before forward");
        let k = self.kernel();
        let (dw, db) = ops::conv2d_backward_weights_with(
            input,
            delta,
            (k, k),
            self.stride,
            self.pad,
            &mut self.scratch,
        );
        self.dweight += &dw;
        self.dbias += &db;
        ops::conv2d_backward_input_with(
            delta,
            &self.weight,
            (input.dims()[1], input.dims()[2]),
            self.stride,
            self.pad,
            &mut self.scratch,
        )
    }

    fn apply_update(&mut self, lr: f32, batch: usize) {
        assert!(batch > 0, "batch must be non-zero");
        let scale = -lr / batch as f32;
        self.weight.axpy_inplace(scale, &self.dweight);
        self.bias.axpy_inplace(scale, &self.dbias);
        self.zero_grad();
    }

    fn zero_grad(&mut self) {
        self.dweight.fill(0.0);
        self.dbias.fill(0.0);
    }

    fn params_mut(&mut self) -> Option<ParamsMut<'_>> {
        Some(ParamsMut {
            weight: &mut self.weight,
            bias: &mut self.bias,
        })
    }

    fn grads_mut(&mut self) -> Option<GradsMut<'_>> {
        Some(GradsMut {
            weight: &mut self.weight,
            bias: &mut self.bias,
            dweight: &mut self.dweight,
            dbias: &mut self.dbias,
        })
    }

    fn param_count(&self) -> usize {
        self.weight.numel() + self.bias.numel()
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Affine
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Conv2d {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            dweight: Tensor::zeros(self.dweight.dims()),
            dbias: Tensor::zeros(self.dbias.dims()),
            stride: self.stride,
            pad: self.pad,
            cached_input: None,
            scratch: ops::ConvScratch::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let out = conv.forward(&Tensor::zeros(&[3, 10, 10]));
        assert_eq!(out.dims(), &[8, 10, 10]);
    }

    #[test]
    fn update_moves_against_gradient() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut rng);
        let x = Tensor::ones(&[1, 3, 3]);
        let y = conv.forward(&x);
        let before: f32 = y.norm_sq();
        // L = 0.5||y||² — gradient step should reduce it.
        conv.backward(&y);
        conv.apply_update(0.05, 1);
        let after = conv.infer(&x).norm_sq();
        assert!(after < before, "loss should drop: {after} !< {before}");
    }

    #[test]
    fn grads_accumulate_across_batch() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut rng);
        let x = Tensor::ones(&[1, 2, 2]);
        let d = Tensor::ones(&[1, 1, 1]);
        conv.forward(&x);
        conv.backward(&d);
        let g1 = conv.dweight.clone();
        conv.forward(&x);
        conv.backward(&d);
        assert!(conv.dweight.allclose(&(&g1 * 2.0), 1e-6));
        // Averaging over batch=2 must equal a single-sample step.
        let w_before = conv.weight.clone();
        conv.apply_update(1.0, 2);
        let expected = &w_before - &g1;
        assert!(conv.weight.allclose(&expected, 1e-5));
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut rng);
        conv.backward(&Tensor::zeros(&[1, 1, 1]));
    }

    #[test]
    fn name_uses_paper_notation() {
        let mut rng = StdRng::seed_from_u64(5);
        let conv = Conv2d::new(1, 20, 5, 1, 0, &mut rng);
        assert_eq!(conv.name(), "conv5x20");
    }
}
