//! Shape adapter between spatial `[C,H,W]` layers and vector layers — the
//! paper's convention that "the values in the data cube of `l` are considered
//! as a vector" when an inner-product layer follows (Sec. 2.1).

use crate::layer::{Layer, LayerKind, ParamsMut};
use pipelayer_tensor::Tensor;

/// Flattens any input tensor into a rank-1 vector, restoring the original
/// shape on the backward path.
#[derive(Debug, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { input_dims: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> String {
        "flatten".to_string()
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.input_dims = Some(input.dims().to_vec());
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.reshape(&[input.numel()])
    }

    fn backward(&mut self, delta: &Tensor) -> Tensor {
        let dims = self
            .input_dims
            .as_ref()
            .expect("Flatten::backward called before forward");
        delta.reshape(dims)
    }

    fn apply_update(&mut self, _lr: f32, _batch: usize) {}
    fn zero_grad(&mut self) {}
    fn params_mut(&mut self) -> Option<ParamsMut<'_>> {
        None
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Flatten
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Flatten::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_shape() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 4], |i| (i[0] + i[1] + i[2]) as f32);
        let y = f.forward(&x);
        assert_eq!(y.dims(), &[24]);
        let dx = f.backward(&y);
        assert_eq!(dx.dims(), &[2, 3, 4]);
        assert!(dx.allclose(&x, 0.0));
    }
}
