//! Pooling layers (Eq. 2, Fig. 10b).

use crate::layer::{Layer, LayerKind, ParamsMut};
use pipelayer_tensor::{ops, Tensor};

/// Max pooling over `k×k` windows with stride `stride`.
///
/// The backward pass copies each error element to the position that held the
/// window maximum — exactly the routing of Fig. 10(b), which PipeLayer
/// performs in the activation component using the stored `d_l`.
#[derive(Debug)]
pub struct MaxPool2d {
    k: usize,
    stride: usize,
    indices: Option<ops::PoolIndices>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `stride` is zero.
    pub fn new(k: usize, stride: usize) -> Self {
        assert!(k > 0 && stride > 0, "invalid pooling geometry");
        MaxPool2d {
            k,
            stride,
            indices: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> String {
        format!("maxpool{}", self.k)
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (out, idx) = ops::maxpool2d(input, self.k, self.stride);
        self.indices = Some(idx);
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        ops::maxpool2d(input, self.k, self.stride).0
    }

    fn backward(&mut self, delta: &Tensor) -> Tensor {
        let idx = self
            .indices
            .as_ref()
            .expect("MaxPool2d::backward called before forward");
        ops::maxpool2d_backward(delta, idx)
    }

    fn apply_update(&mut self, _lr: f32, _batch: usize) {}
    fn zero_grad(&mut self) {}
    fn params_mut(&mut self) -> Option<ParamsMut<'_>> {
        None
    }

    fn kind(&self) -> LayerKind {
        LayerKind::MaxPool {
            k: self.k,
            stride: self.stride,
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(MaxPool2d::new(self.k, self.stride))
    }
}

/// Average pooling over `k×k` windows (Eq. 2). The paper notes the `1/K²`
/// scaling can be a shift when `K²` is a power of two.
#[derive(Debug)]
pub struct AvgPool2d {
    k: usize,
    stride: usize,
    input_hw: Option<(usize, usize)>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `stride` is zero.
    pub fn new(k: usize, stride: usize) -> Self {
        assert!(k > 0 && stride > 0, "invalid pooling geometry");
        AvgPool2d {
            k,
            stride,
            input_hw: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> String {
        format!("avgpool{}", self.k)
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.input_hw = Some((input.dims()[1], input.dims()[2]));
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        ops::avgpool2d(input, self.k, self.stride)
    }

    fn backward(&mut self, delta: &Tensor) -> Tensor {
        let hw = self
            .input_hw
            .expect("AvgPool2d::backward called before forward");
        ops::avgpool2d_backward(delta, hw, self.k, self.stride)
    }

    fn apply_update(&mut self, _lr: f32, _batch: usize) {}
    fn zero_grad(&mut self) {}
    fn params_mut(&mut self) -> Option<ParamsMut<'_>> {
        None
    }

    fn kind(&self) -> LayerKind {
        LayerKind::AvgPool {
            k: self.k,
            stride: self.stride,
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(AvgPool2d::new(self.k, self.stride))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_roundtrip() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_fn(&[1, 4, 4], |i| (i[1] * 4 + i[2]) as f32);
        let y = p.forward(&x);
        assert_eq!(y.dims(), &[1, 2, 2]);
        let dx = p.backward(&y);
        assert_eq!(dx.dims(), &[1, 4, 4]);
        // Errors land only on window maxima (bottom-right corners here).
        assert_eq!(dx[[0, 3, 3]], 15.0);
        assert_eq!(dx[[0, 0, 0]], 0.0);
    }

    #[test]
    fn avgpool_roundtrip() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::ones(&[2, 4, 4]);
        let y = p.forward(&x);
        assert!(y.allclose(&Tensor::ones(&[2, 2, 2]), 1e-6));
        let dx = p.backward(&Tensor::ones(&[2, 2, 2]));
        assert!(dx.allclose(&Tensor::full(&[2, 4, 4], 0.25), 1e-6));
    }

    #[test]
    fn pools_are_parameterless() {
        assert_eq!(MaxPool2d::new(2, 2).param_count(), 0);
        assert_eq!(AvgPool2d::new(2, 2).param_count(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid pooling geometry")]
    fn rejects_zero_window() {
        MaxPool2d::new(0, 1);
    }
}
