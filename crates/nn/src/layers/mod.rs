//! Concrete layer implementations: the three CNN layer types of Sec. 2.1
//! (convolution, pooling, inner product) plus ReLU activation and the
//! flatten adapter between spatial and vector layers.

mod conv;
mod dropout;
mod fc;
mod flatten;
mod pool;
mod relu;
mod sigmoid;

pub use conv::Conv2d;
pub use dropout::Dropout;
pub use fc::Linear;
pub use flatten::Flatten;
pub use pool::{AvgPool2d, MaxPool2d};
pub use relu::Relu;
pub use sigmoid::Sigmoid;
