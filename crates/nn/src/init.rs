//! Weight initialisation schemes.

use pipelayer_tensor::Tensor;
use rand::Rng;

/// Xavier/Glorot-uniform initialisation: `U(−a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Keeps activations in the linear
/// regime at the start of training, which matters doubly here because the
/// quantization study (Fig. 13) maps these weights onto limited-resolution
/// ReRAM cells.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    debug_assert!(fan_in > 0 && fan_out > 0, "fans must be non-zero");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::uniform(dims, -a, a, rng)
}

/// He-normal initialisation (`N(0, sqrt(2/fan_in))`), the standard choice in
/// front of ReLU activations.
pub fn he_normal(dims: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    debug_assert!(fan_in > 0, "fan_in must be non-zero");
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(dims, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(&[100, 100], 100, 100, &mut rng);
        let a = (6.0f32 / 200.0).sqrt();
        assert!(t.abs_max() <= a);
        assert!(t.abs_max() > a * 0.5, "suspiciously small spread");
    }

    #[test]
    fn he_normal_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = he_normal(&[64, 64], 64, &mut rng);
        let var = t.norm_sq() / t.numel() as f32;
        let want = 2.0 / 64.0;
        assert!((var - want).abs() < want * 0.3, "var {var} vs want {want}");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_fan() {
        let mut rng = StdRng::seed_from_u64(3);
        xavier_uniform(&[2, 2], 0, 4, &mut rng);
    }
}
