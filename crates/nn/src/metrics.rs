//! Evaluation metrics.

use crate::data::Dataset;
use crate::network::Network;

/// A `C×C` confusion matrix: `counts[true][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Evaluates `net` over `data`, assuming `classes` output classes.
    ///
    /// Out-of-range labels (and `classes == 0`) are debug-checked; in
    /// release such samples are skipped rather than panicking.
    pub fn evaluate(net: &Network, data: &Dataset, classes: usize) -> Self {
        debug_assert!(classes > 0, "need at least one class");
        let mut counts = vec![vec![0usize; classes]; classes];
        for (img, &label) in data.images.iter().zip(&data.labels) {
            debug_assert!(label < classes, "label {label} out of range");
            let pred = net.predict(img);
            if let Some(row) = counts.get_mut(label) {
                row[pred.min(classes - 1)] += 1;
            }
        }
        ConfusionMatrix { counts }
    }

    /// Raw counts, `counts()[true][pred]`.
    pub fn counts(&self) -> &[Vec<usize>] {
        &self.counts
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let total: usize = self.counts.iter().map(|r| r.iter().sum::<usize>()).sum();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = self.counts.iter().enumerate().map(|(i, r)| r[i]).sum();
        diag as f32 / total as f32
    }

    /// Per-class recall (`None` where a class has no samples).
    pub fn recall(&self) -> Vec<Option<f32>> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let n: usize = row.iter().sum();
                (n > 0).then(|| row[i] as f32 / n as f32)
            })
            .collect()
    }
}

/// Plain accuracy of `net` on `data`.
pub fn accuracy(net: &Network, data: &Dataset) -> f32 {
    net.accuracy(&data.images, &data.labels)
}

/// Accuracy lost relative to a baseline, in percentage points (positive
/// means the degraded run is worse). The unit the device-robustness
/// studies (variation sweep, fault-tolerance ablation) report in.
pub fn accuracy_drop_points(baseline: f32, degraded: f32) -> f32 {
    (baseline - degraded) * 100.0
}

/// A baseline-vs-degraded accuracy comparison for robustness studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationReport {
    /// Accuracy of the unperturbed reference run.
    pub baseline: f32,
    /// Accuracy of the degraded (faulty / corrupted) run.
    pub degraded: f32,
    /// Spare columns still unconsumed across the device when the degraded
    /// accuracy was measured (0 for runs without a repair layer).
    pub spares_left: usize,
    /// Output columns masked off after the repair ladder exhausted its
    /// options — the graceful-degradation toll paid so far.
    pub masked_units: usize,
}

impl DegradationReport {
    /// A report with no repair-layer state (spares/masks zero) — the shape
    /// every pre-wear robustness study produces.
    pub fn new(baseline: f32, degraded: f32) -> Self {
        DegradationReport {
            baseline,
            degraded,
            spares_left: 0,
            masked_units: 0,
        }
    }

    /// Attaches the repair-layer state observed at measurement time.
    pub fn with_repair_state(mut self, spares_left: usize, masked_units: usize) -> Self {
        self.spares_left = spares_left;
        self.masked_units = masked_units;
        self
    }

    /// Accuracy lost, percentage points (positive = worse).
    pub fn drop_points(&self) -> f32 {
        accuracy_drop_points(self.baseline, self.degraded)
    }

    /// `true` if the degraded run stays within `tolerance_points` of the
    /// baseline — the pass criterion of the fault-tolerance round trip.
    pub fn within(&self, tolerance_points: f32) -> bool {
        self.drop_points() <= tolerance_points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticMnist;
    use crate::zoo;

    #[test]
    fn confusion_matrix_consistent_with_accuracy() {
        let data = SyntheticMnist::generate(20, 20, 11);
        let net = zoo::mnist_a(11); // untrained
        let cm = ConfusionMatrix::evaluate(&net, &data.test, 10);
        let total: usize = cm.counts().iter().map(|r| r.iter().sum::<usize>()).sum();
        assert_eq!(total, 20);
        assert!((cm.accuracy() - accuracy(&net, &data.test)).abs() < 1e-6);
    }

    #[test]
    fn degradation_report_measures_in_points() {
        let r = DegradationReport::new(0.92, 0.895);
        assert!((r.drop_points() - 2.5).abs() < 1e-4);
        assert!(r.within(3.0));
        assert!(!r.within(2.0));
        // An improvement is a negative drop and always "within".
        let better = DegradationReport::new(0.5, 0.6);
        assert!(better.drop_points() < 0.0);
        assert!(better.within(0.0));
        // Repair state rides along without touching the accuracy math.
        let repaired = DegradationReport::new(0.92, 0.91).with_repair_state(3, 1);
        assert_eq!(repaired.spares_left, 3);
        assert_eq!(repaired.masked_units, 1);
        assert!(repaired.within(2.0));
    }

    #[test]
    fn recall_handles_missing_classes() {
        let cm = ConfusionMatrix {
            counts: vec![vec![2, 0], vec![0, 0]],
        };
        let r = cm.recall();
        assert_eq!(r[0], Some(1.0));
        assert_eq!(r[1], None);
    }
}
