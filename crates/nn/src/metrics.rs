//! Evaluation metrics.

use crate::data::Dataset;
use crate::network::Network;

/// A `C×C` confusion matrix: `counts[true][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Evaluates `net` over `data`, assuming `classes` output classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero or any label is out of range.
    pub fn evaluate(net: &Network, data: &Dataset, classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        let mut counts = vec![vec![0usize; classes]; classes];
        for (img, &label) in data.images.iter().zip(&data.labels) {
            assert!(label < classes, "label {label} out of range");
            let pred = net.predict(img);
            counts[label][pred.min(classes - 1)] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Raw counts, `counts()[true][pred]`.
    pub fn counts(&self) -> &[Vec<usize>] {
        &self.counts
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let total: usize = self.counts.iter().map(|r| r.iter().sum::<usize>()).sum();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = self.counts.iter().enumerate().map(|(i, r)| r[i]).sum();
        diag as f32 / total as f32
    }

    /// Per-class recall (`None` where a class has no samples).
    pub fn recall(&self) -> Vec<Option<f32>> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let n: usize = row.iter().sum();
                (n > 0).then(|| row[i] as f32 / n as f32)
            })
            .collect()
    }
}

/// Plain accuracy of `net` on `data`.
pub fn accuracy(net: &Network, data: &Dataset) -> f32 {
    net.accuracy(&data.images, &data.labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticMnist;
    use crate::zoo;

    #[test]
    fn confusion_matrix_consistent_with_accuracy() {
        let data = SyntheticMnist::generate(20, 20, 11);
        let net = zoo::mnist_a(11); // untrained
        let cm = ConfusionMatrix::evaluate(&net, &data.test, 10);
        let total: usize = cm.counts().iter().map(|r| r.iter().sum::<usize>()).sum();
        assert_eq!(total, 20);
        assert!((cm.accuracy() - accuracy(&net, &data.test)).abs() < 1e-6);
    }

    #[test]
    fn recall_handles_missing_classes() {
        let cm = ConfusionMatrix {
            counts: vec![vec![2, 0], vec![0, 0]],
        };
        let r = cm.recall();
        assert_eq!(r[0], Some(1.0));
        assert_eq!(r[1], None);
    }
}
