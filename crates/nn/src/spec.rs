//! Architecture-level network descriptions.
//!
//! The accelerator model in the `pipelayer` crate never needs to *execute*
//! AlexNet or VGG — it needs their geometry: layer shapes, kernel-matrix
//! dimensions, the number of kernel-window positions per layer (the
//! sequential-input count of Fig. 4), and operation counts. [`NetSpec`]
//! captures exactly that, and [`NetSpec::build`] can also instantiate a
//! functional [`Network`] for the MNIST-scale models.
//!
//! [`Network`]: crate::Network
//!
//! Pooling is *folded into the preceding weighted layer*: in PipeLayer, max
//! pooling is performed by the register in the activation component
//! (Sec. 4.2.3) and its error backward is routed by the same component
//! (Sec. 4.3, Fig. 10b), so a pool never occupies a pipeline stage of its
//! own. `L` in the paper's cycle formulas counts *weighted* layers.

use crate::layers::{AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d, Relu};
use crate::loss::Loss;
use crate::network::Network;
use pipelayer_tensor::ops::conv_output_len;
use rand::Rng;

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Max pooling (register in the activation component).
    Max,
    /// Average pooling (shift-add when `K²` is a power of two).
    Avg,
}

/// One layer of a network description, in the paper's notation
/// (`ConvKxC`, pooling, `N1-N2` inner product).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerSpec {
    /// Convolution with `c_out` kernels of spatial size `k×k`, followed by
    /// ReLU.
    Conv {
        /// Kernel spatial size `K`.
        k: usize,
        /// Output channels.
        c_out: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Pooling over `k×k` windows with stride `stride`.
    Pool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Max or average.
        kind: PoolKind,
    },
    /// Inner-product layer to `n_out` neurons, followed by ReLU unless it is
    /// the network's final layer.
    Fc {
        /// Output neurons.
        n_out: usize,
    },
}

/// A complete network description: input geometry plus layer list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetSpec {
    /// Network name as used in the paper's figures (e.g. `"VGG-C"`).
    pub name: String,
    /// Input `(channels, height, width)`.
    pub input: (usize, usize, usize),
    /// Ordered layers.
    pub layers: Vec<LayerSpec>,
}

/// A weighted layer with its geometry resolved against the input shape —
/// the unit the accelerator maps onto morphable subarrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedLayer {
    /// `"convKxC"` or `"ipM-N"`.
    pub name: String,
    /// `true` for convolution, `false` for inner product.
    pub is_conv: bool,
    /// Input shape `(C, H, W)`; for FC layers `(n_in, 1, 1)`.
    pub in_shape: (usize, usize, usize),
    /// Output shape before pooling `(C, H, W)`; for FC `(n_out, 1, 1)`.
    pub out_shape: (usize, usize, usize),
    /// Shape after the folded pooling stage, if any.
    pub post_pool_shape: (usize, usize, usize),
    /// Rows of the mapped kernel matrix: `K·K·C_in + 1` (with bias),
    /// or `n_in + 1`.
    pub matrix_rows: usize,
    /// Columns of the mapped kernel matrix: `C_out` or `n_out`.
    pub matrix_cols: usize,
    /// Kernel-window positions per image — the number of sequential input
    /// vectors fed to the crossbars (Fig. 4). `1` for FC layers.
    pub window_positions: usize,
    /// Learnable scalars (weights + biases).
    pub weights: usize,
    /// Multiply–accumulate operations in one forward pass.
    pub macs_forward: u64,
}

impl ResolvedLayer {
    /// Forward operation count (2 ops per MAC, the GOPS convention used in
    /// the paper's efficiency numbers).
    pub fn ops_forward(&self) -> u64 {
        2 * self.macs_forward
    }

    /// Backward operation count: error backward (≈ forward cost) plus the
    /// weight-gradient convolution (≈ forward cost).
    pub fn ops_backward(&self) -> u64 {
        4 * self.macs_forward
    }
}

impl NetSpec {
    /// Creates a spec.
    pub fn new(
        name: impl Into<String>,
        input: (usize, usize, usize),
        layers: Vec<LayerSpec>,
    ) -> Self {
        NetSpec {
            name: name.into(),
            input,
            layers,
        }
    }

    /// Resolves the spec into weighted layers with concrete geometry,
    /// folding each pooling stage into the preceding weighted layer.
    ///
    /// # Panics
    ///
    /// Panics if a pool precedes any weighted layer, or windows do not fit.
    pub fn resolve(&self) -> Vec<ResolvedLayer> {
        let mut out: Vec<ResolvedLayer> = Vec::new();
        let mut shape = self.input;
        for spec in &self.layers {
            match *spec {
                LayerSpec::Conv {
                    k,
                    c_out,
                    stride,
                    pad,
                } => {
                    let (c_in, h, w) = shape;
                    let ho = conv_output_len(h, k, stride, pad);
                    let wo = conv_output_len(w, k, stride, pad);
                    let macs = (ho * wo * c_out * k * k * c_in) as u64;
                    out.push(ResolvedLayer {
                        name: format!("conv{k}x{c_out}"),
                        is_conv: true,
                        in_shape: shape,
                        out_shape: (c_out, ho, wo),
                        post_pool_shape: (c_out, ho, wo),
                        matrix_rows: k * k * c_in + 1,
                        matrix_cols: c_out,
                        window_positions: ho * wo,
                        weights: k * k * c_in * c_out + c_out,
                        macs_forward: macs,
                    });
                    shape = (c_out, ho, wo);
                }
                LayerSpec::Pool { k, stride, .. } => {
                    let (c, h, w) = shape;
                    let ho = conv_output_len(h, k, stride, 0);
                    let wo = conv_output_len(w, k, stride, 0);
                    let prev = out
                        .last_mut()
                        .expect("pooling cannot precede all weighted layers");
                    prev.post_pool_shape = (c, ho, wo);
                    shape = (c, ho, wo);
                }
                LayerSpec::Fc { n_out } => {
                    let (c, h, w) = shape;
                    let n_in = c * h * w;
                    let macs = (n_in * n_out) as u64;
                    out.push(ResolvedLayer {
                        name: format!("ip{n_in}-{n_out}"),
                        is_conv: false,
                        in_shape: (n_in, 1, 1),
                        out_shape: (n_out, 1, 1),
                        post_pool_shape: (n_out, 1, 1),
                        matrix_rows: n_in + 1,
                        matrix_cols: n_out,
                        window_positions: 1,
                        weights: n_in * n_out + n_out,
                        macs_forward: macs,
                    });
                    shape = (n_out, 1, 1);
                }
            }
        }
        out
    }

    /// Number of weighted layers — the `L` of the paper's cycle formulas.
    pub fn weighted_layers(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| !matches!(l, LayerSpec::Pool { .. }))
            .count()
    }

    /// Total learnable scalars.
    pub fn weight_count(&self) -> usize {
        self.resolve().iter().map(|l| l.weights).sum()
    }

    /// Forward operations for one image (2 ops/MAC).
    pub fn ops_forward(&self) -> u64 {
        self.resolve().iter().map(|l| l.ops_forward()).sum()
    }

    /// Backward (training) operations for one image.
    pub fn ops_backward(&self) -> u64 {
        self.resolve().iter().map(|l| l.ops_backward()).sum()
    }

    /// `true` if the network has no convolution layers (pure MLP).
    pub fn is_mlp(&self) -> bool {
        !self
            .layers
            .iter()
            .any(|l| matches!(l, LayerSpec::Conv { .. }))
    }

    /// Instantiates a functional, trainable [`Network`] from this spec.
    /// ReLU follows every weighted layer except the last; pooling layers are
    /// instantiated explicitly. Intended for the MNIST-scale networks — the
    /// ImageNet models would allocate gigabytes.
    pub fn build(&self, loss: Loss, rng: &mut impl Rng) -> Network {
        let mut net = Network::new(self.name.clone(), loss);
        let mut shape = self.input;
        let weighted_total = self.weighted_layers();
        let mut weighted_seen = 0usize;
        let mut flattened = false;
        for spec in &self.layers {
            match *spec {
                LayerSpec::Conv {
                    k,
                    c_out,
                    stride,
                    pad,
                } => {
                    let (c_in, h, w) = shape;
                    net.push(Conv2d::new(c_in, c_out, k, stride, pad, rng));
                    weighted_seen += 1;
                    if weighted_seen < weighted_total {
                        net.push(Relu::new());
                    }
                    shape = (
                        c_out,
                        conv_output_len(h, k, stride, pad),
                        conv_output_len(w, k, stride, pad),
                    );
                }
                LayerSpec::Pool { k, stride, kind } => {
                    match kind {
                        PoolKind::Max => {
                            net.push(MaxPool2d::new(k, stride));
                        }
                        PoolKind::Avg => {
                            net.push(AvgPool2d::new(k, stride));
                        }
                    }
                    let (c, h, w) = shape;
                    shape = (
                        c,
                        conv_output_len(h, k, stride, 0),
                        conv_output_len(w, k, stride, 0),
                    );
                }
                LayerSpec::Fc { n_out } => {
                    let (c, h, w) = shape;
                    if !flattened && (h > 1 || w > 1 || c != c * h * w) {
                        net.push(Flatten::new());
                        flattened = true;
                    }
                    net.push(Linear::new(c * h * w, n_out, rng));
                    weighted_seen += 1;
                    if weighted_seen < weighted_total {
                        net.push(Relu::new());
                    }
                    shape = (n_out, 1, 1);
                }
            }
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lenet_like() -> NetSpec {
        NetSpec::new(
            "lenet",
            (1, 28, 28),
            vec![
                LayerSpec::Conv {
                    k: 5,
                    c_out: 20,
                    stride: 1,
                    pad: 0,
                },
                LayerSpec::Pool {
                    k: 2,
                    stride: 2,
                    kind: PoolKind::Max,
                },
                LayerSpec::Conv {
                    k: 5,
                    c_out: 50,
                    stride: 1,
                    pad: 0,
                },
                LayerSpec::Pool {
                    k: 2,
                    stride: 2,
                    kind: PoolKind::Max,
                },
                LayerSpec::Fc { n_out: 500 },
                LayerSpec::Fc { n_out: 10 },
            ],
        )
    }

    #[test]
    fn resolve_shapes() {
        let layers = lenet_like().resolve();
        assert_eq!(layers.len(), 4);
        assert_eq!(layers[0].out_shape, (20, 24, 24));
        assert_eq!(layers[0].post_pool_shape, (20, 12, 12));
        assert_eq!(layers[1].out_shape, (50, 8, 8));
        assert_eq!(layers[1].post_pool_shape, (50, 4, 4));
        assert_eq!(layers[2].in_shape, (800, 1, 1));
        assert_eq!(layers[3].out_shape, (10, 1, 1));
    }

    #[test]
    fn matrix_dims_match_fig4() {
        // Fig. 4: 28 channels of 5x5 kernels over 24x24 output -> the mapped
        // matrix for a layer with C_in=28, K=5, C_out=28 has 700+1 rows.
        let spec = NetSpec::new(
            "fig4",
            (28, 28, 28),
            vec![LayerSpec::Conv {
                k: 5,
                c_out: 28,
                stride: 1,
                pad: 0,
            }],
        );
        let l = &spec.resolve()[0];
        assert_eq!(l.matrix_rows, 5 * 5 * 28 + 1);
        assert_eq!(l.matrix_cols, 28);
        assert_eq!(l.window_positions, 24 * 24);
    }

    #[test]
    fn weighted_layer_count_ignores_pools() {
        assert_eq!(lenet_like().weighted_layers(), 4);
    }

    #[test]
    fn mac_counts() {
        let spec = lenet_like();
        let layers = spec.resolve();
        // conv1: 24*24*20*5*5*1 = 288000 MACs
        assert_eq!(layers[0].macs_forward, 288_000);
        // fc to 10: 500*10
        assert_eq!(layers[3].macs_forward, 5_000);
        assert_eq!(
            spec.ops_forward(),
            layers.iter().map(|l| l.ops_forward()).sum()
        );
        assert_eq!(spec.ops_backward(), 2 * spec.ops_forward());
    }

    #[test]
    fn weight_count_matches_known_formula() {
        let spec = lenet_like();
        let want = (5 * 5 * 20 + 20) + (5 * 5 * 20 * 50 + 50) + (800 * 500 + 500) + (500 * 10 + 10);
        assert_eq!(spec.weight_count(), want);
    }

    #[test]
    fn build_produces_trainable_network() {
        let mut rng = StdRng::seed_from_u64(9);
        let spec = NetSpec::new(
            "tiny",
            (1, 6, 6),
            vec![
                LayerSpec::Conv {
                    k: 3,
                    c_out: 4,
                    stride: 1,
                    pad: 0,
                },
                LayerSpec::Pool {
                    k: 2,
                    stride: 2,
                    kind: PoolKind::Max,
                },
                LayerSpec::Fc { n_out: 3 },
            ],
        );
        let mut net = spec.build(Loss::SoftmaxCrossEntropy, &mut rng);
        let x = pipelayer_tensor::Tensor::ones(&[1, 6, 6]);
        let y = net.forward(&x);
        assert_eq!(y.dims(), &[3]);
        let loss0 = net.train_batch(std::slice::from_ref(&x), &[1], 0.1);
        let loss1 = net.train_batch(std::slice::from_ref(&x), &[1], 0.1);
        assert!(loss1 < loss0);
    }

    #[test]
    fn mlp_detection() {
        assert!(!lenet_like().is_mlp());
        let mlp = NetSpec::new("m", (1, 28, 28), vec![LayerSpec::Fc { n_out: 10 }]);
        assert!(mlp.is_mlp());
    }

    #[test]
    #[should_panic(expected = "pooling cannot precede")]
    fn rejects_leading_pool() {
        NetSpec::new(
            "bad",
            (1, 4, 4),
            vec![LayerSpec::Pool {
                k: 2,
                stride: 2,
                kind: PoolKind::Max,
            }],
        )
        .resolve();
    }
}
