//! Checkpointing: a small, dependency-free binary format for saving and
//! restoring training state — the host-side artifact that `Weight_load`
//! (Sec. 5.2) programs into the morphable arrays.
//!
//! Two formats share this module:
//!
//! * **PLW1** (legacy, parameters only, little-endian):
//!   `b"PLW1"` · `u32` tensor count · per tensor: `u32` rank, `u32×rank`
//!   dims, `f32×numel` data. Weights and biases alternate in layer order.
//! * **PLW2** (full training state): `b"PLW2"` · `u32` section count · per
//!   section: `[u8;4]` tag · `u32` payload length · payload · `u32` CRC32
//!   (IEEE) of tag ‖ payload (PNG-style, so a corrupted tag cannot
//!   masquerade as an unknown section). Known tags: `TNSR` (the PLW1
//!   tensor body),
//!   `OPTS` (optimizer velocity buffers), `RNGS` (shuffle seed), `CURS`
//!   (epoch/image cursor + per-epoch loss history), `WEAR` (an opaque
//!   device-state blob — wear counters, live fault map and repair-ladder
//!   state captured by `ReramMlp::device_state`). Unknown tags are
//!   skipped, so the format is forward-extensible; every section is
//!   integrity-checked, so a torn or bit-flipped blob fails loudly with
//!   [`DecodeError::BadChecksum`] instead of resuming from garbage.
//!
//! The PLW2 container is also usable standalone via [`save_sections`] /
//! [`load_sections`] for sidecar artifacts (e.g. the wear-out campaign's
//! kill/resume snapshots) that carry their own tags.
//!
//! [`load_checkpoint`] accepts both formats (a PLW1 blob yields an empty
//! [`CheckpointState`]), and every decoder caps its allocations by the
//! bytes actually present, so corrupt length fields cannot OOM the host.

use crate::network::Network;
use pipelayer_tensor::Tensor;
use std::fmt;
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 4] = b"PLW1";
const MAGIC2: &[u8; 4] = b"PLW2";

/// Errors while decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Not a PLW1/PLW2 blob.
    BadMagic,
    /// Blob ended mid-field (or a length field exceeds the blob).
    Truncated,
    /// A PLW2 section's payload does not match its stored CRC32.
    BadChecksum,
    /// Bytes remain past the declared content (e.g. a corrupted section
    /// or tensor count silently dropping trailing sections).
    TrailingBytes,
    /// Tensor shape disagrees with the target network.
    ShapeMismatch {
        /// Index of the offending tensor.
        index: usize,
    },
    /// Checkpoint holds a different number of tensors than the network.
    CountMismatch {
        /// Tensors in the blob.
        found: usize,
        /// Tensors the network needs.
        expected: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a PLW1/PLW2 checkpoint"),
            DecodeError::Truncated => write!(f, "checkpoint truncated"),
            DecodeError::BadChecksum => write!(f, "checkpoint section failed its CRC32 check"),
            DecodeError::TrailingBytes => {
                write!(f, "checkpoint has bytes past its declared content")
            }
            DecodeError::ShapeMismatch { index } => {
                write!(f, "tensor {index} shape mismatch")
            }
            DecodeError::CountMismatch { found, expected } => {
                write!(
                    f,
                    "checkpoint has {found} tensors, network needs {expected}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// CRC32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0u32;
    while i < 256 {
        let mut c = i;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i as usize] = c;
        i += 1;
    }
    table
};

fn crc32_feed(mut c: u32, data: &[u8]) -> u32 {
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC32 checksum of `data` (IEEE; the ZIP/PNG variant).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_feed(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Section checksum: CRC32 over tag ‖ payload, as PNG chunks do — a bit
/// flip in the tag fails the check instead of skipping the section.
fn section_crc(tag: &[u8; 4], payload: &[u8]) -> u32 {
    crc32_feed(crc32_feed(0xFFFF_FFFF, tag), payload) ^ 0xFFFF_FFFF
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, then rename over the target — a reader never observes a torn
/// checkpoint, and a crash mid-write leaves the previous file intact.
///
/// # Errors
///
/// Any I/O error from create/write/sync/rename (the temp file is left
/// behind for post-mortem in that case).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Length/count fields are `u32` on the wire; an impossible >4G value
/// saturates (and then fails to round-trip) instead of silently wrapping.
fn len_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

fn push_tensor(out: &mut Vec<u8>, t: &Tensor) {
    out.extend(len_u32(t.dims().len()).to_le_bytes());
    for &d in t.dims() {
        out.extend(len_u32(d).to_le_bytes());
    }
    for &v in t.as_slice() {
        out.extend(v.to_le_bytes());
    }
}

/// The PLW1 body shared by both formats: tensor count + tensors.
fn params_body(net: &mut Network) -> Vec<u8> {
    let tensors: Vec<Tensor> = net
        .layers_mut()
        .iter_mut()
        .filter_map(|l| l.params_mut())
        .flat_map(|p| [p.weight.clone(), p.bias.clone()])
        .collect();
    let mut out = Vec::new();
    out.extend(len_u32(tensors.len()).to_le_bytes());
    for t in &tensors {
        push_tensor(&mut out, t);
    }
    out
}

/// Serialises every parameter tensor of `net` (weights and biases, layer
/// order) into a legacy PLW1 checkpoint blob.
pub fn save_params(net: &mut Network) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend(MAGIC);
    out.extend(params_body(net));
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.remaining() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Decodes one tensor, with every allocation bounded by the bytes actually
/// left in the blob — a corrupt rank/dim field fails with `Truncated`
/// instead of attempting a giant allocation.
fn decode_tensor(r: &mut Reader) -> Result<Tensor, DecodeError> {
    let rank = r.u32()? as usize;
    if rank > r.remaining() / 4 {
        return Err(DecodeError::Truncated);
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(r.u32()? as usize);
    }
    let numel = dims
        .iter()
        .try_fold(1usize, |a, &d| a.checked_mul(d))
        .ok_or(DecodeError::Truncated)?;
    if numel > r.remaining() / 4 {
        return Err(DecodeError::Truncated);
    }
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(r.f32()?);
    }
    Ok(Tensor::from_vec(&dims, data))
}

fn decode_tensors(r: &mut Reader) -> Result<Vec<Tensor>, DecodeError> {
    let count = r.u32()? as usize;
    if count > r.remaining() / 4 {
        return Err(DecodeError::Truncated);
    }
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        tensors.push(decode_tensor(r)?);
    }
    Ok(tensors)
}

/// Validates shapes against `net` and commits; the network is untouched on
/// error.
fn apply_tensors(net: &mut Network, tensors: Vec<Tensor>) -> Result<(), DecodeError> {
    let expected = net
        .layers_mut()
        .iter_mut()
        .filter(|l| l.param_count() > 0)
        .count()
        * 2;
    if tensors.len() != expected {
        return Err(DecodeError::CountMismatch {
            found: tensors.len(),
            expected,
        });
    }
    {
        // The count check above guarantees the iterator yields a (weight,
        // bias) pair per parameterised layer; a `None` here would mean that
        // invariant broke, and reporting it as a mismatch beats panicking.
        let mut it = tensors.iter();
        let mut index = 0usize;
        for layer in net.layers_mut() {
            if let Some(p) = layer.params_mut() {
                match it.next() {
                    Some(w) if w.dims() == p.weight.dims() => {}
                    _ => return Err(DecodeError::ShapeMismatch { index }),
                }
                index += 1;
                match it.next() {
                    Some(b) if b.dims() == p.bias.dims() => {}
                    _ => return Err(DecodeError::ShapeMismatch { index }),
                }
                index += 1;
            }
        }
    }
    let mut it = tensors.into_iter();
    for layer in net.layers_mut() {
        if let Some(p) = layer.params_mut() {
            if let (Some(w), Some(b)) = (it.next(), it.next()) {
                *p.weight = w;
                *p.bias = b;
            }
        }
    }
    Ok(())
}

/// Restores a checkpoint produced by [`save_params`] (or the parameters of
/// a [`save_checkpoint`] blob) into `net`.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input or mismatched architecture; the
/// network is left unmodified on error.
pub fn load_params(net: &mut Network, bytes: &[u8]) -> Result<(), DecodeError> {
    if bytes.len() >= 4 && &bytes[..4] == MAGIC2 {
        return load_checkpoint(net, bytes).map(|_| ());
    }
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let tensors = decode_tensors(&mut r)?;
    if r.remaining() != 0 {
        return Err(DecodeError::TrailingBytes);
    }
    apply_tensors(net, tensors)
}

/// Where a resumable training run stood when the checkpoint was taken.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCursor {
    /// Epoch in progress (== total epochs when training completed).
    pub epoch: u32,
    /// Images consumed within that epoch (always a batch boundary).
    pub images_done: u64,
    /// Running loss sum of the partial epoch.
    pub partial_loss_sum: f32,
    /// Batches behind `partial_loss_sum`.
    pub partial_batches: u32,
    /// Mean losses of the completed epochs.
    pub epoch_losses: Vec<f32>,
}

/// Everything beyond the parameters that a PLW2 checkpoint carries.
#[derive(Debug, Clone, Default)]
pub struct CheckpointState {
    /// Seed of the epoch-shuffle RNG stream.
    pub shuffle_seed: u64,
    /// Training-progress cursor (`None` for a parameters-only blob).
    pub cursor: Option<TrainCursor>,
    /// Optimizer velocity buffers, two entries (weight, bias) per
    /// parameterised layer (`None` when training ran plain SGD).
    pub velocities: Option<Vec<Option<Tensor>>>,
    /// Opaque device-state blob (wear counters, live fault map,
    /// repair-ladder state — the bytes `ReramMlp::device_state` produced),
    /// carried verbatim in a `WEAR` section. `None` when the run has no
    /// wearing device attached.
    pub wear: Option<Vec<u8>>,
}

fn push_section(out: &mut Vec<u8>, tag: &[u8; 4], payload: &[u8]) {
    out.extend(tag);
    out.extend(len_u32(payload.len()).to_le_bytes());
    out.extend(payload);
    out.extend(section_crc(tag, payload).to_le_bytes());
}

/// Serialises `net`'s parameters plus the full training state into a PLW2
/// blob.
pub fn save_checkpoint(net: &mut Network, state: &CheckpointState) -> Vec<u8> {
    let mut sections: Vec<([u8; 4], Vec<u8>)> = vec![(*b"TNSR", params_body(net))];
    if let Some(vel) = &state.velocities {
        let mut p = Vec::new();
        p.extend(len_u32(vel.len()).to_le_bytes());
        for v in vel {
            match v {
                Some(t) => {
                    p.push(1);
                    push_tensor(&mut p, t);
                }
                None => p.push(0),
            }
        }
        sections.push((*b"OPTS", p));
    }
    sections.push((*b"RNGS", state.shuffle_seed.to_le_bytes().to_vec()));
    if let Some(c) = &state.cursor {
        let mut p = Vec::new();
        p.extend(c.epoch.to_le_bytes());
        p.extend(c.images_done.to_le_bytes());
        p.extend(c.partial_loss_sum.to_le_bytes());
        p.extend(c.partial_batches.to_le_bytes());
        p.extend(len_u32(c.epoch_losses.len()).to_le_bytes());
        for &l in &c.epoch_losses {
            p.extend(l.to_le_bytes());
        }
        sections.push((*b"CURS", p));
    }
    if let Some(w) = &state.wear {
        sections.push((*b"WEAR", w.clone()));
    }
    save_sections(&sections)
}

/// One PLW2 section: a four-byte tag and its payload.
pub type Section = ([u8; 4], Vec<u8>);

/// Frames arbitrary `(tag, payload)` sections into a standalone PLW2
/// container (magic · section count · CRC-protected sections). The
/// checkpoint writer uses this internally; sidecar artifacts (device-state
/// snapshots, campaign cursors) use it directly with their own tags.
pub fn save_sections(sections: &[Section]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend(MAGIC2);
    out.extend(len_u32(sections.len()).to_le_bytes());
    for (tag, payload) in sections {
        push_section(&mut out, tag, payload);
    }
    out
}

/// Parses a PLW2 container back into its `(tag, payload)` sections,
/// CRC-checking every one. Tags are returned verbatim (no known-tag
/// filtering) in on-wire order.
///
/// # Errors
///
/// [`DecodeError::BadMagic`] for non-PLW2 input, [`DecodeError::Truncated`]
/// when a length field runs past the blob, [`DecodeError::BadChecksum`] on
/// any CRC mismatch, [`DecodeError::TrailingBytes`] when bytes remain past
/// the declared section count.
pub fn load_sections(bytes: &[u8]) -> Result<Vec<Section>, DecodeError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC2 {
        return Err(DecodeError::BadMagic);
    }
    let nsec = r.u32()? as usize;
    let mut sections = Vec::new();
    for _ in 0..nsec {
        let tag = r.take(4)?;
        let tag: [u8; 4] = [tag[0], tag[1], tag[2], tag[3]];
        let len = r.u32()? as usize;
        let payload = r.take(len)?;
        let stored = r.u32()?;
        if section_crc(&tag, payload) != stored {
            return Err(DecodeError::BadChecksum);
        }
        sections.push((tag, payload.to_vec()));
    }
    if r.remaining() != 0 {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(sections)
}

fn decode_velocities(r: &mut Reader) -> Result<Vec<Option<Tensor>>, DecodeError> {
    let count = r.u32()? as usize;
    if count > r.remaining() {
        return Err(DecodeError::Truncated);
    }
    let mut vel = Vec::with_capacity(count);
    for _ in 0..count {
        let flag = r.take(1)?[0];
        vel.push(if flag != 0 {
            Some(decode_tensor(r)?)
        } else {
            None
        });
    }
    Ok(vel)
}

fn decode_cursor(r: &mut Reader) -> Result<TrainCursor, DecodeError> {
    let epoch = r.u32()?;
    let images_done = r.u64()?;
    let partial_loss_sum = r.f32()?;
    let partial_batches = r.u32()?;
    let n = r.u32()? as usize;
    if n > r.remaining() / 4 {
        return Err(DecodeError::Truncated);
    }
    let mut epoch_losses = Vec::with_capacity(n);
    for _ in 0..n {
        epoch_losses.push(r.f32()?);
    }
    Ok(TrainCursor {
        epoch,
        images_done,
        partial_loss_sum,
        partial_batches,
        epoch_losses,
    })
}

/// Restores a PLW2 (or legacy PLW1) checkpoint into `net` and returns the
/// training state it carried (empty for PLW1).
///
/// Every PLW2 section is CRC-checked before any of it is applied; unknown
/// section tags are skipped for forward compatibility.
///
/// # Errors
///
/// Any [`DecodeError`]; the network is left unmodified on error.
pub fn load_checkpoint(net: &mut Network, bytes: &[u8]) -> Result<CheckpointState, DecodeError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic == MAGIC {
        let tensors = decode_tensors(&mut r)?;
        if r.remaining() != 0 {
            return Err(DecodeError::TrailingBytes);
        }
        apply_tensors(net, tensors)?;
        return Ok(CheckpointState::default());
    }
    if magic != MAGIC2 {
        return Err(DecodeError::BadMagic);
    }
    let nsec = r.u32()? as usize;
    let mut state = CheckpointState::default();
    let mut tensors = None;
    for _ in 0..nsec {
        let tag = r.take(4)?;
        let tag: [u8; 4] = [tag[0], tag[1], tag[2], tag[3]];
        let len = r.u32()? as usize;
        let payload = r.take(len)?;
        let stored = r.u32()?;
        if section_crc(&tag, payload) != stored {
            return Err(DecodeError::BadChecksum);
        }
        let mut pr = Reader {
            buf: payload,
            pos: 0,
        };
        match &tag {
            b"TNSR" => tensors = Some(decode_tensors(&mut pr)?),
            b"OPTS" => state.velocities = Some(decode_velocities(&mut pr)?),
            b"RNGS" => state.shuffle_seed = pr.u64()?,
            b"CURS" => state.cursor = Some(decode_cursor(&mut pr)?),
            b"WEAR" => state.wear = Some(payload.to_vec()),
            _ => {} // unknown section: forward-compatible skip
        }
    }
    if r.remaining() != 0 {
        return Err(DecodeError::TrailingBytes);
    }
    let tensors = tensors.ok_or(DecodeError::Truncated)?;
    apply_tensors(net, tensors)?;
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use pipelayer_tensor::Tensor;

    #[test]
    fn roundtrip_preserves_predictions() {
        let mut a = zoo::mnist_a(31);
        let blob = save_params(&mut a);
        let mut b = zoo::mnist_a(99); // different init
        let x = Tensor::from_fn(&[1, 28, 28], |i| ((i[1] + i[2]) as f32 * 0.03).sin().abs());
        assert_ne!(format!("{:?}", a.infer(&x)), format!("{:?}", b.infer(&x)));
        load_params(&mut b, &blob).expect("load");
        assert!(a.infer(&x).allclose(&b.infer(&x), 0.0));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut net = zoo::mnist_a(1);
        assert_eq!(load_params(&mut net, b"nope"), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_truncation() {
        let mut net = zoo::mnist_a(2);
        let mut blob = save_params(&mut net);
        blob.truncate(blob.len() / 2);
        assert_eq!(load_params(&mut net, &blob), Err(DecodeError::Truncated));
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let mut a = zoo::mnist_a(3);
        let blob = save_params(&mut a);
        let mut c = zoo::mnist_c(3);
        match load_params(&mut c, &blob) {
            Err(DecodeError::CountMismatch { .. }) | Err(DecodeError::ShapeMismatch { .. }) => {}
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn error_leaves_network_intact() {
        let mut net = zoo::mnist_a(4);
        let x = Tensor::ones(&[1, 28, 28]);
        let before = net.infer(&x);
        let mut blob = save_params(&mut net);
        blob.truncate(blob.len() - 1);
        let _ = load_params(&mut net, &blob);
        assert!(net.infer(&x).allclose(&before, 0.0));
    }

    #[test]
    fn format_is_compact() {
        let mut net = zoo::mnist_a(5);
        let blob = save_params(&mut net);
        // 79,510 params × 4 bytes + small header/shape overhead.
        let payload = net.param_count() * 4;
        assert!(blob.len() >= payload && blob.len() < payload + 128);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn full_state() -> CheckpointState {
        CheckpointState {
            shuffle_seed: 0xD1CE,
            cursor: Some(TrainCursor {
                epoch: 2,
                images_done: 48,
                partial_loss_sum: 1.25,
                partial_batches: 3,
                epoch_losses: vec![0.9, 0.7],
            }),
            velocities: Some(vec![
                Some(Tensor::full(&[2, 3], 0.5)),
                None,
                Some(Tensor::full(&[4], -0.25)),
                None,
            ]),
            wear: Some(vec![0xDE, 0xAD, 0x01, 0x02, 0x03]),
        }
    }

    #[test]
    fn plw2_roundtrips_full_training_state() {
        let mut a = zoo::mnist_a(41);
        let state = full_state();
        let blob = save_checkpoint(&mut a, &state);
        let mut b = zoo::mnist_a(77);
        let got = load_checkpoint(&mut b, &blob).expect("load");
        let x = Tensor::ones(&[1, 28, 28]);
        assert!(a.infer(&x).allclose(&b.infer(&x), 0.0));
        assert_eq!(got.shuffle_seed, state.shuffle_seed);
        assert_eq!(got.cursor, state.cursor);
        assert_eq!(got.wear, state.wear, "WEAR blob must ride along verbatim");
        let (sv, gv) = (state.velocities.unwrap(), got.velocities.unwrap());
        assert_eq!(sv.len(), gv.len());
        for (s, g) in sv.iter().zip(&gv) {
            match (s, g) {
                (Some(s), Some(g)) => assert!(s.allclose(g, 0.0)),
                (None, None) => {}
                other => panic!("velocity slot mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn plw1_blobs_still_decode_under_the_plw2_loader() {
        let mut a = zoo::mnist_a(42);
        let blob = save_params(&mut a);
        let mut b = zoo::mnist_a(9);
        let state = load_checkpoint(&mut b, &blob).expect("PLW1 must load");
        assert!(state.cursor.is_none());
        assert!(state.velocities.is_none());
        assert!(state.wear.is_none());
        let x = Tensor::ones(&[1, 28, 28]);
        assert!(a.infer(&x).allclose(&b.infer(&x), 0.0));
    }

    #[test]
    fn bit_flip_anywhere_is_caught() {
        let mut a = zoo::mnist_a(43);
        let blob = save_checkpoint(&mut a, &full_state());
        // Flip a bit inside the tensor payload (past magic + section count
        // + tag + len, well into TNSR data).
        let mut bad = blob.clone();
        bad[200] ^= 0x10;
        let mut b = zoo::mnist_a(1);
        assert_eq!(
            load_checkpoint(&mut b, &bad).err(),
            Some(DecodeError::BadChecksum)
        );
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let mut a = zoo::mnist_a(44);
        let mut blob = save_checkpoint(&mut a, &CheckpointState::default());
        // Append an unknown section and bump the section count.
        let payload = b"future data";
        push_section(&mut blob, b"XYZW", payload);
        let count = u32::from_le_bytes([blob[4], blob[5], blob[6], blob[7]]) + 1;
        blob[4..8].copy_from_slice(&count.to_le_bytes());
        let mut b = zoo::mnist_a(2);
        load_checkpoint(&mut b, &blob).expect("unknown tag must be skipped");
    }

    #[test]
    fn corrupt_length_fields_cannot_allocate_past_the_blob() {
        // A PLW1 header claiming u32::MAX tensors with a huge rank: decode
        // must fail fast with Truncated, not try to reserve gigabytes.
        let mut blob = Vec::new();
        blob.extend(MAGIC);
        blob.extend(u32::MAX.to_le_bytes()); // tensor count
        blob.extend(u32::MAX.to_le_bytes()); // rank of "first tensor"
        let mut net = zoo::mnist_a(3);
        assert_eq!(load_params(&mut net, &blob), Err(DecodeError::Truncated));

        // Same through the PLW2 path: a TNSR section with absurd dims.
        let mut payload = Vec::new();
        payload.extend(1u32.to_le_bytes()); // one tensor
        payload.extend(2u32.to_le_bytes()); // rank 2
        payload.extend(0x00FF_FFFF_u32.to_le_bytes());
        payload.extend(0x00FF_FFFF_u32.to_le_bytes()); // numel overflows budget
        let mut blob2 = Vec::new();
        blob2.extend(MAGIC2);
        blob2.extend(1u32.to_le_bytes());
        push_section(&mut blob2, b"TNSR", &payload);
        assert_eq!(
            load_checkpoint(&mut net, &blob2).err(),
            Some(DecodeError::Truncated)
        );
    }

    #[test]
    fn shrunken_section_counts_cannot_drop_sections_silently() {
        let mut a = zoo::mnist_a(46);
        let mut blob = save_checkpoint(&mut a, &full_state());
        // Corrupt the section count downwards: the tail sections would be
        // silently ignored without the trailing-bytes check.
        let count = u32::from_le_bytes([blob[4], blob[5], blob[6], blob[7]]) - 1;
        blob[4..8].copy_from_slice(&count.to_le_bytes());
        let mut b = zoo::mnist_a(8);
        assert_eq!(
            load_checkpoint(&mut b, &blob).err(),
            Some(DecodeError::TrailingBytes)
        );
    }

    #[test]
    fn standalone_sections_roundtrip_and_catch_corruption() {
        let sections = vec![
            (*b"WEAR", vec![1u8, 2, 3, 4, 5]),
            (*b"CURS", vec![9u8; 32]),
            (*b"XTRA", Vec::new()),
        ];
        let blob = save_sections(&sections);
        assert_eq!(load_sections(&blob).expect("roundtrip"), sections);

        // Bit flip in the first payload (magic 4 + count 4 + tag 4 + len 4
        // puts its bytes at 16..21) → BadChecksum.
        let mut bad = blob.clone();
        bad[17] ^= 0x40;
        assert_eq!(load_sections(&bad).err(), Some(DecodeError::BadChecksum));

        // Truncation mid-section → Truncated; wrong magic → BadMagic;
        // appended garbage → TrailingBytes.
        assert_eq!(
            load_sections(&blob[..blob.len() - 2]).err(),
            Some(DecodeError::Truncated)
        );
        assert_eq!(
            load_sections(b"PLW1....").err(),
            Some(DecodeError::BadMagic)
        );
        let mut tail = blob;
        tail.push(0);
        assert_eq!(load_sections(&tail).err(), Some(DecodeError::TrailingBytes));
    }

    #[test]
    fn atomic_write_replaces_and_survives_reread() {
        let dir = std::env::temp_dir().join(format!("plw2-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.plw2");
        let mut a = zoo::mnist_a(45);
        let blob = save_checkpoint(&mut a, &full_state());
        atomic_write(&path, &blob).expect("write");
        atomic_write(&path, &blob).expect("overwrite");
        let back = std::fs::read(&path).expect("read");
        assert_eq!(back, blob);
        let mut b = zoo::mnist_a(6);
        load_checkpoint(&mut b, &back).expect("reload");
        std::fs::remove_dir_all(&dir).ok();
    }
}
