//! Weight checkpointing: a small, dependency-free binary format for saving
//! and restoring a network's learnable parameters — the host-side artifact
//! that `Weight_load` (Sec. 5.2) programs into the morphable arrays.
//!
//! Format (little-endian):
//! `b"PLW1"` · `u32` tensor count · per tensor: `u32` rank, `u32×rank`
//! dims, `f32×numel` data. Weights and biases alternate in layer order.

use crate::network::Network;
use pipelayer_tensor::Tensor;
use std::fmt;

const MAGIC: &[u8; 4] = b"PLW1";

/// Errors while decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Not a PLW1 blob.
    BadMagic,
    /// Blob ended mid-field.
    Truncated,
    /// Tensor shape disagrees with the target network.
    ShapeMismatch {
        /// Index of the offending tensor.
        index: usize,
    },
    /// Checkpoint holds a different number of tensors than the network.
    CountMismatch {
        /// Tensors in the blob.
        found: usize,
        /// Tensors the network needs.
        expected: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a PLW1 checkpoint"),
            DecodeError::Truncated => write!(f, "checkpoint truncated"),
            DecodeError::ShapeMismatch { index } => {
                write!(f, "tensor {index} shape mismatch")
            }
            DecodeError::CountMismatch { found, expected } => {
                write!(
                    f,
                    "checkpoint has {found} tensors, network needs {expected}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

fn push_tensor(out: &mut Vec<u8>, t: &Tensor) {
    out.extend((t.dims().len() as u32).to_le_bytes());
    for &d in t.dims() {
        out.extend((d as u32).to_le_bytes());
    }
    for &v in t.as_slice() {
        out.extend(v.to_le_bytes());
    }
}

/// Serialises every parameter tensor of `net` (weights and biases, layer
/// order) into a checkpoint blob.
pub fn save_params(net: &mut Network) -> Vec<u8> {
    let tensors: Vec<Tensor> = net
        .layers_mut()
        .iter_mut()
        .filter_map(|l| l.params_mut())
        .flat_map(|p| [p.weight.clone(), p.bias.clone()])
        .collect();
    let mut out = Vec::new();
    out.extend(MAGIC);
    out.extend((tensors.len() as u32).to_le_bytes());
    for t in &tensors {
        push_tensor(&mut out, t);
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Restores a checkpoint produced by [`save_params`] into `net`.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input or mismatched architecture; the
/// network is left unmodified on error.
pub fn load_params(net: &mut Network, bytes: &[u8]) -> Result<(), DecodeError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let count = r.u32()? as usize;
    // Decode everything first so errors cannot leave the net half-written.
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = r.u32()? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(r.u32()? as usize);
        }
        let numel: usize = dims.iter().product();
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(r.f32()?);
        }
        tensors.push(Tensor::from_vec(&dims, data));
    }

    let expected = net
        .layers_mut()
        .iter_mut()
        .filter(|l| l.param_count() > 0)
        .count()
        * 2;
    if tensors.len() != expected {
        return Err(DecodeError::CountMismatch {
            found: tensors.len(),
            expected,
        });
    }
    // Validate shapes before committing.
    {
        let mut it = tensors.iter();
        let mut index = 0usize;
        for layer in net.layers_mut() {
            if let Some(p) = layer.params_mut() {
                let w = it.next().expect("count checked");
                if w.dims() != p.weight.dims() {
                    return Err(DecodeError::ShapeMismatch { index });
                }
                index += 1;
                let b = it.next().expect("count checked");
                if b.dims() != p.bias.dims() {
                    return Err(DecodeError::ShapeMismatch { index });
                }
                index += 1;
            }
        }
    }
    let mut it = tensors.into_iter();
    for layer in net.layers_mut() {
        if let Some(p) = layer.params_mut() {
            *p.weight = it.next().expect("validated");
            *p.bias = it.next().expect("validated");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use pipelayer_tensor::Tensor;

    #[test]
    fn roundtrip_preserves_predictions() {
        let mut a = zoo::mnist_a(31);
        let blob = save_params(&mut a);
        let mut b = zoo::mnist_a(99); // different init
        let x = Tensor::from_fn(&[1, 28, 28], |i| ((i[1] + i[2]) as f32 * 0.03).sin().abs());
        assert_ne!(format!("{:?}", a.infer(&x)), format!("{:?}", b.infer(&x)));
        load_params(&mut b, &blob).expect("load");
        assert!(a.infer(&x).allclose(&b.infer(&x), 0.0));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut net = zoo::mnist_a(1);
        assert_eq!(load_params(&mut net, b"nope"), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_truncation() {
        let mut net = zoo::mnist_a(2);
        let mut blob = save_params(&mut net);
        blob.truncate(blob.len() / 2);
        assert_eq!(load_params(&mut net, &blob), Err(DecodeError::Truncated));
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let mut a = zoo::mnist_a(3);
        let blob = save_params(&mut a);
        let mut c = zoo::mnist_c(3);
        match load_params(&mut c, &blob) {
            Err(DecodeError::CountMismatch { .. }) | Err(DecodeError::ShapeMismatch { .. }) => {}
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn error_leaves_network_intact() {
        let mut net = zoo::mnist_a(4);
        let x = Tensor::ones(&[1, 28, 28]);
        let before = net.infer(&x);
        let mut blob = save_params(&mut net);
        blob.truncate(blob.len() - 1);
        let _ = load_params(&mut net, &blob);
        assert!(net.infer(&x).allclose(&before, 0.0));
    }

    #[test]
    fn format_is_compact() {
        let mut net = zoo::mnist_a(5);
        let blob = save_params(&mut net);
        // 79,510 params × 4 bytes + small header/shape overhead.
        let payload = net.param_count() * 4;
        assert!(blob.len() >= payload && blob.len() < payload + 128);
    }
}
