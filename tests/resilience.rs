//! Runtime-resilience integration tests: device aging (conductance drift +
//! read disturb), the online scrub scheduler, and the guarantee that the
//! whole subsystem is an exact no-op when switched off.

use pipelayer::endurance::{training_lifetime, EnduranceModel};
use pipelayer::energy::EnergyModel;
use pipelayer::functional::{downsample, ReramMlp};
use pipelayer::timing::TimingModel;
use pipelayer::{MappedNetwork, PipeLayerConfig, ScrubPolicy};
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::serialize::{load_checkpoint, save_checkpoint, save_params};
use pipelayer_nn::zoo;
use pipelayer_nn::CheckpointState;
use pipelayer_reram::{DriftModel, NoiseModel, ReramMatrix, ReramParams, VerifyPolicy};
use pipelayer_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// With scrubbing off (the default), every paper-config number this repo
/// reports must be BIT-IDENTICAL to its pre-scrub value — the resilience
/// subsystem may not perturb calibrated results even in the last ulp.
/// The pinned bit patterns were captured on the commit before the scrub
/// model landed.
#[test]
fn scrub_off_is_bit_identical_to_pre_scrub_baselines() {
    let cfg = PipeLayerConfig::default();
    assert!(!cfg.scrub_enabled(), "scrub must default to off");
    assert!(!cfg.noise_enabled(), "analog noise must default to off");
    let model = EnduranceModel::research_grade();

    let cases: [(&str, pipelayer_nn::NetSpec, u64, u64); 3] = [
        (
            "mnist_a",
            zoo::spec_mnist_a(),
            0x3f69bc7c249d17a5,
            0x40e989e666666666,
        ),
        (
            "mnist_0",
            zoo::spec_mnist_0(),
            0x3fa0a9459d83b236,
            0x4103ec4147ae147c,
        ),
        (
            "alexnet",
            zoo::alexnet(),
            0x4004abe5b19f1264,
            0x4140efc7eb851eb9,
        ),
    ];
    for (name, spec, energy_bits, lifetime_bits) in cases {
        let net = MappedNetwork::from_spec(&spec, cfg);
        let t = TimingModel::new(&net);
        assert_eq!(
            t.update_cycle_ns().to_bits(),
            0x40ca5b1eb851eb85,
            "{name}: update cycle moved"
        );
        assert_eq!(t.scrub_ns_per_image(), 0.0, "{name}");
        let e = EnergyModel::new(&net).training_energy_j(64);
        assert_eq!(e.to_bits(), energy_bits, "{name}: training energy moved");
        let l = training_lifetime(&net, &model);
        assert_eq!(l.seconds.to_bits(), lifetime_bits, "{name}: lifetime moved");
    }
}

fn aging_model() -> DriftModel {
    // Retention knee at 10k cycles: far beyond a training run (~1k cycles
    // here), so learning is undisturbed, but well within deployment scale.
    // The large cell-to-cell ν spread is what hurts accuracy: a uniform
    // conductance decay would leave every argmax unchanged, but per-cell
    // heterogeneity distorts *relative* weights.
    DriftModel {
        nu: 0.2,
        nu_sigma: 0.15,
        t0_cycles: 10_000,
        disturb_per_level: 0,
    }
}

fn small_task() -> (Vec<Tensor>, Vec<usize>, Vec<Tensor>, Vec<usize>) {
    let data = SyntheticMnist::generate(120, 40, 77);
    let tr: Vec<Tensor> = data.train.images.iter().map(|t| downsample(t, 4)).collect();
    let te: Vec<Tensor> = data.test.images.iter().map(|t| downsample(t, 4)).collect();
    (tr, data.train.labels, te, data.test.labels)
}

/// The paper-class Mnist-A drift campaign: train on ReRAM, then let the
/// deployed arrays age. The scrub-on arm must stay within 2 accuracy
/// points of the drift-free baseline while the scrub-off arm measurably
/// degrades — the headline claim of the resilience subsystem.
#[test]
fn drift_campaign_scrub_on_tracks_baseline_scrub_off_degrades() {
    let (tr, trl, te, tel) = small_task();
    let mut mlp = ReramMlp::with_resilience(
        &[49, 16, 10],
        &ReramParams::default(),
        5,
        aging_model(),
        ScrubPolicy::off(),
        VerifyPolicy::default(),
    );
    for _ in 0..8 {
        for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)) {
            mlp.train_batch(imgs, labs, 0.3);
        }
    }
    let baseline = mlp.accuracy(&te, &tel);
    assert!(baseline > 0.5, "training should work at all: {baseline}");

    // Deploy two arms from the same trained weights and age them for
    // 1M logical cycles, one with periodic maintenance scrubs.
    let mut scrubbed = mlp.clone();
    let mut unscrubbed = mlp.clone();
    for _ in 0..10 {
        scrubbed.advance_cycles(100_000);
        scrubbed.scrub_all();
        unscrubbed.advance_cycles(100_000);
    }
    let acc_on = scrubbed.accuracy(&te, &tel);
    let acc_off = unscrubbed.accuracy(&te, &tel);
    assert!(unscrubbed.drifted_cells() > 0, "aging must leave damage");
    assert_eq!(scrubbed.drifted_cells(), 0, "scrub repairs everything");
    assert!(
        acc_on >= baseline - 0.02,
        "scrub-on must hold within 2 points: {acc_on} vs {baseline}"
    );
    assert!(
        acc_off < baseline - 0.05,
        "scrub-off must measurably degrade: {acc_off} vs {baseline}"
    );
}

/// Pins one drifted read so the seeded `(seed, crossbar, row, col, epoch)`
/// derivation chain can never silently change. The value was captured when
/// the drift model landed; a mismatch means reproducibility broke.
#[test]
fn drifted_weight_regression_pin() {
    let w: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) / 10.0).collect();
    let mut m = ReramMatrix::program(&w, 4, 4, &ReramParams::default());
    m.attach_drift(aging_model(), 0xD5EED);
    let before = m.read();
    m.advance_cycles(100_000);
    let after = m.read();
    assert_ne!(before, after, "a 100k-cycle age must move some read");
    // Captured from the first implementation of the seedstream scheme.
    assert_eq!(
        after[0].to_bits(),
        PINNED_DRIFTED_W0,
        "drifted read changed: seed derivation is no longer stable ({} bits {:#010x})",
        after[0],
        after[0].to_bits()
    );
}

const PINNED_DRIFTED_W0: u32 = 0xbf18ddff;

/// Attaching [`NoiseModel::ideal`] must leave a matrix read BIT-identical
/// to never attaching noise at all — the no-op gate the paper-figure pins
/// above rely on (the default config carries the ideal model).
#[test]
fn ideal_noise_is_bit_identical_to_no_noise() {
    let w: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) / 10.0).collect();
    let plain = ReramMatrix::program(&w, 4, 4, &ReramParams::default());
    let mut noisy = ReramMatrix::program(&w, 4, 4, &ReramParams::default());
    noisy.attach_noise(NoiseModel::ideal(), 0xA11A);
    let a: Vec<u32> = plain.read().iter().map(|v| v.to_bits()).collect();
    let b: Vec<u32> = noisy.read().iter().map(|v| v.to_bits()).collect();
    assert_eq!(a, b, "ideal noise model changed a read");
}

/// Pins one noisy read so the noise model's `(seed, crossbar, row, col,
/// epoch)` derivation chain can never silently change — the analogue of
/// [`drifted_weight_regression_pin`] for the non-ideality model.
#[test]
fn noisy_weight_regression_pin() {
    let w: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) / 10.0).collect();
    let mut m = ReramMatrix::program(&w, 4, 4, &ReramParams::default());
    m.attach_noise(NoiseModel::with_strength(2.0), 0xA11A);
    let first = m.read();
    assert_ne!(w, first.clone(), "strength-2 noise must perturb some read");
    let mut m2 = ReramMatrix::program(&w, 4, 4, &ReramParams::default());
    m2.attach_noise(NoiseModel::with_strength(2.0), 0xA11A);
    assert_eq!(
        first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        m2.read().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "same seed must replay the same noisy read"
    );
    assert_eq!(
        first[0].to_bits(),
        PINNED_NOISY_W0,
        "noisy read changed: seed derivation is no longer stable ({} bits {:#010x})",
        first[0],
        first[0].to_bits()
    );
}

const PINNED_NOISY_W0: u32 = 0xbf64b1ca;

/// A PLW2 blob carrying a full training state (cursor, RNG seed) over the
/// smallest zoo network, shared by the decode-hardening properties below.
fn plw2_blob() -> Vec<u8> {
    let mut net = zoo::mnist_0(11);
    let state = CheckpointState {
        shuffle_seed: 0xD1CE,
        cursor: Some(pipelayer_nn::TrainCursor {
            epoch: 1,
            images_done: 32,
            partial_loss_sum: 0.75,
            partial_batches: 2,
            epoch_losses: vec![1.5],
        }),
        velocities: None,
        wear: Some(vec![0x57, 0xEA, 0x12]),
    };
    save_checkpoint(&mut net, &state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strict prefix of a checkpoint must fail to decode — a torn
    /// write can never be mistaken for a valid resume point.
    #[test]
    fn truncated_checkpoints_always_error(cut in 0u64..=u64::MAX) {
        let blob = plw2_blob();
        let cut = (cut % blob.len() as u64) as usize;
        let mut net = zoo::mnist_0(3);
        prop_assert!(load_checkpoint(&mut net, &blob[..cut]).is_err());
    }

    /// Any single bit flip anywhere in the blob — magic, section counts,
    /// tags, lengths, payloads, CRCs — must be rejected, never silently
    /// resumed from. (Tags are covered because the section CRC spans
    /// tag ‖ payload, PNG-style.)
    #[test]
    fn single_bit_flips_always_error(pos in 0u64..=u64::MAX, bit in 0u32..8) {
        let mut blob = plw2_blob();
        let pos = (pos % blob.len() as u64) as usize;
        blob[pos] ^= 1u8 << bit;
        let mut net = zoo::mnist_0(3);
        prop_assert!(
            load_checkpoint(&mut net, &blob).is_err(),
            "flip of bit {bit} at byte {pos} decoded successfully"
        );
    }

    /// Same property for the legacy PLW1 format: truncation anywhere
    /// errors out (PLW1 has no CRC, but the length accounting must still
    /// never panic or over-allocate).
    #[test]
    fn truncated_plw1_always_errors(cut in 0u64..=u64::MAX) {
        let mut net = zoo::mnist_0(11);
        let blob = save_params(&mut net);
        let cut = (cut % blob.len() as u64) as usize;
        let mut target = zoo::mnist_0(3);
        prop_assert!(load_checkpoint(&mut target, &blob[..cut]).is_err());
    }

    /// Arbitrary garbage — wrong magic included — must produce a
    /// `DecodeError`, never a panic or a runaway allocation.
    #[test]
    fn random_garbage_never_panics(seed in 0u64..=u64::MAX, len in 0usize..2048) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..=255)).collect();
        let mut net = zoo::mnist_0(3);
        prop_assert!(load_checkpoint(&mut net, &bytes).is_err());
    }
}
