//! End-to-end fault tolerance: a network trained on faulty arrays with the
//! program-and-verify + spare-remapping stack must track the fault-free
//! baseline, and the verify discipline's cost must be visible in the
//! analytic energy, timing and endurance models.

use pipelayer::config::PipeLayerConfig;
use pipelayer::endurance::{training_lifetime, EnduranceModel};
use pipelayer::energy::EnergyModel;
use pipelayer::functional::{downsample, ReramMlp};
use pipelayer::mapping::MappedNetwork;
use pipelayer::repair::SpareBudget;
use pipelayer::timing::TimingModel;
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::metrics::DegradationReport;
use pipelayer_nn::zoo;
use pipelayer_reram::{FaultModel, ReramParams, VerifyPolicy};
use pipelayer_tensor::Tensor;

const DIMS: [usize; 3] = [49, 16, 10];

fn small_task() -> (Vec<Tensor>, Vec<usize>, Vec<Tensor>, Vec<usize>) {
    let data = SyntheticMnist::generate(120, 40, 77);
    let ds = |v: &[Tensor]| -> Vec<Tensor> { v.iter().map(|t| downsample(t, 4)).collect() };
    (
        ds(&data.train.images),
        data.train.labels.clone(),
        ds(&data.test.images),
        data.test.labels.clone(),
    )
}

fn train(mlp: &mut ReramMlp, tr: &[Tensor], trl: &[usize]) {
    for _ in 0..6 {
        for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)) {
            mlp.train_batch(imgs, labs, 0.3);
        }
    }
}

/// The headline round trip: stuck-at faults at 1e-3, bounded
/// program-and-verify writes, spare-column remapping — final accuracy
/// within 2 percentage points of the fault-free baseline.
#[test]
fn repaired_training_stays_within_two_points_of_fault_free() {
    let (tr, trl, te, tel) = small_task();
    let params = ReramParams::default();

    let mut ideal = ReramMlp::new(&DIMS, &params, 5);
    train(&mut ideal, &tr, &trl);

    let mut repaired = ReramMlp::with_fault_tolerance(
        &DIMS,
        &params,
        5,
        &FaultModel::with_stuck_rate(1e-3),
        VerifyPolicy {
            max_attempts: 3,
            write_sigma: 0.2,
        },
        SpareBudget::typical(),
    );
    train(&mut repaired, &tr, &trl);

    let report = DegradationReport::new(ideal.accuracy(&te, &tel), repaired.accuracy(&te, &tel));
    assert!(
        report.within(2.0),
        "repaired run lost {} points (baseline {}, repaired {})",
        report.drop_points(),
        report.baseline,
        report.degraded
    );

    // The repair machinery actually engaged: verified writes were costed
    // and at least one faulty column was remapped or masked.
    let cost = repaired.fault_report().expect("fault tolerance is on");
    assert!(cost.pulses > 0 && cost.verify_reads > 0);
    assert!(cost.overhead() >= 1.0);
    assert!(
        repaired.spares_used() + repaired.masked_units() > 0,
        "a 1e-3 stuck rate over these arrays should hit at least one column"
    );
}

/// The same fault process without any tolerance: silent stuck cells at a
/// heavy rate measurably break training — the ablation's "repair off" arm.
#[test]
fn silent_faults_degrade_measurably_without_repair() {
    let (tr, trl, te, tel) = small_task();
    let params = ReramParams::default();

    let mut ideal = ReramMlp::new(&DIMS, &params, 5);
    train(&mut ideal, &tr, &trl);

    let mut faulty = ReramMlp::with_faults(&DIMS, &params, 5, &FaultModel::with_stuck_rate(2e-2));
    train(&mut faulty, &tr, &trl);

    let report = DegradationReport::new(ideal.accuracy(&te, &tel), faulty.accuracy(&te, &tel));
    assert!(
        report.drop_points() > 10.0,
        "2% silent stuck cells should cost >10 points, lost {}",
        report.drop_points()
    );
}

/// The verify-write discipline is visible end to end in the analytic
/// models: more update energy, a longer update cycle, more wear per
/// update, and a shorter lifetime — while the forward path is untouched.
#[test]
fn verify_cost_flows_through_energy_timing_and_endurance() {
    let spec = zoo::spec_mnist_a();
    let base = MappedNetwork::from_spec(&spec, PipeLayerConfig::default());
    let ft_cfg = PipeLayerConfig::default().with_fault_tolerance(
        FaultModel::with_stuck_rate(1e-3),
        VerifyPolicy {
            max_attempts: 5,
            write_sigma: 0.5,
        },
        SpareBudget::typical(),
    );
    let ft = MappedNetwork::from_spec(&spec, ft_cfg);

    // Energy: training costs more, testing (no writes) is identical.
    let (e_base, e_ft) = (EnergyModel::new(&base), EnergyModel::new(&ft));
    let n = 10 * base.config.batch_size as u64;
    assert!(e_ft.training_energy_j(n) > e_base.training_energy_j(n));
    assert_eq!(e_ft.testing_energy_j(n), e_base.testing_energy_j(n));
    assert!(e_ft.update_verify_read_spikes_per_batch() > 0);
    assert!(e_ft.verified_update_write_spikes_per_batch() > e_ft.update_write_spikes_per_batch());

    // Timing: the update cycle stretches, the pipeline cycle does not.
    let (t_base, t_ft) = (TimingModel::new(&base), TimingModel::new(&ft));
    assert!(t_ft.update_cycle_ns() > t_base.update_cycle_ns());
    assert_eq!(t_ft.cycle_training_ns(), t_base.cycle_training_ns());

    // Endurance: retries wear cells faster, so lifetime shrinks.
    let model = EnduranceModel::research_grade();
    let (l_base, l_ft) = (
        training_lifetime(&base, &model),
        training_lifetime(&ft, &model),
    );
    assert_eq!(l_base.pulses_per_update, 1.0);
    assert!(l_ft.pulses_per_update > 1.0);
    assert!(l_ft.seconds < l_base.seconds);
}
