//! The paper's headline claims, checked end-to-end against the full model
//! stack (networks → mapping → timing/energy/area → baselines).

use pipelayer::Accelerator;
use pipelayer_baselines::dadiannao::{DADIANNAO, ISAAC};
use pipelayer_baselines::GpuModel;
use pipelayer_nn::zoo;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|&x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn workloads() -> Vec<(pipelayer_nn::NetSpec, u64)> {
    zoo::evaluation_specs()
        .into_iter()
        .map(|s| {
            let n = if s.input.1 <= 32 { 6400 } else { 640 };
            (s, n)
        })
        .collect()
}

#[test]
fn every_network_speeds_up_over_gpu() {
    let gpu = GpuModel::default();
    for (spec, n) in workloads() {
        let accel = Accelerator::builder(spec.clone()).batch_size(64).build();
        let s_train = gpu.training(&spec, n, 64).time_s / accel.estimate_training(n).time_s;
        let s_test = gpu.testing(&spec, n, 64).time_s / accel.estimate_testing(n).time_s;
        assert!(
            s_train > 1.0,
            "{} trains slower than GPU: {s_train}",
            spec.name
        );
        assert!(
            s_test > 1.0,
            "{} tests slower than GPU: {s_test}",
            spec.name
        );
    }
}

#[test]
fn speedup_geomeans_in_paper_band() {
    // Paper: overall/testing geomean 42.45x. We accept the same order of
    // magnitude (half to double).
    let gpu = GpuModel::default();
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (spec, n) in workloads() {
        let accel = Accelerator::builder(spec.clone()).batch_size(64).build();
        train.push(gpu.training(&spec, n, 64).time_s / accel.estimate_training(n).time_s);
        test.push(gpu.testing(&spec, n, 64).time_s / accel.estimate_testing(n).time_s);
    }
    let g_test = geomean(&test);
    let g_train = geomean(&train);
    assert!(
        (21.0..85.0).contains(&g_test),
        "testing speedup geomean {g_test} outside the paper band (42.45x ±2x)"
    );
    // Sec. 6.3: training speedups are lower than testing speedups.
    assert!(
        g_train < g_test,
        "training geomean {g_train} should trail testing {g_test}"
    );
}

#[test]
fn mnist_c_beats_alexnet_in_training_speedup() {
    // Sec. 6.3: "the speedup of Mnist-C is larger than AlexNet in training
    // ... because Mnist-C is a multilayer perceptron network".
    let gpu = GpuModel::default();
    let s = |spec: pipelayer_nn::NetSpec, n: u64| {
        let accel = Accelerator::builder(spec.clone()).batch_size(64).build();
        gpu.training(&spec, n, 64).time_s / accel.estimate_training(n).time_s
    };
    let mnist_c = s(zoo::spec_mnist_c(), 6400);
    let alexnet = s(zoo::alexnet(), 640);
    assert!(
        mnist_c > alexnet,
        "Mnist-C training speedup ({mnist_c:.1}) should exceed AlexNet's ({alexnet:.1})"
    );
}

#[test]
fn energy_savings_in_paper_band() {
    // Paper: geomean energy savings 6.52x (train) / 7.88x (test) / 7.17x
    // overall; the reproduction should land within ~2x of those and keep
    // training below testing.
    let gpu = GpuModel::default();
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (spec, n) in workloads() {
        let accel = Accelerator::builder(spec.clone()).batch_size(64).build();
        train.push(gpu.training(&spec, n, 64).energy_j / accel.estimate_training(n).energy_j);
        test.push(gpu.testing(&spec, n, 64).energy_j / accel.estimate_testing(n).energy_j);
    }
    let (g_train, g_test) = (geomean(&train), geomean(&test));
    assert!(
        (3.0..20.0).contains(&g_train),
        "train energy geomean {g_train}"
    );
    assert!(
        (4.0..25.0).contains(&g_test),
        "test energy geomean {g_test}"
    );
    assert!(g_train < g_test, "training saving should trail testing");
    // MLPs save far more than VGGs (Fig. 16's shape).
    assert!(
        test[0] > 5.0 * test[9],
        "Mnist-A should dwarf VGG-E in saving"
    );
}

#[test]
fn area_matches_published_value() {
    let accel = Accelerator::builder(zoo::alexnet()).batch_size(64).build();
    let area = accel.training_area_mm2();
    assert!(
        (area - 82.6).abs() < 2.0,
        "calibrated AlexNet training area {area} should sit at the published 82.6 mm^2"
    );
}

#[test]
fn efficiency_orderings_hold() {
    // Sec. 6.6: computational efficiency above ISAAC and DaDianNao; power
    // efficiency below both eDRAM-buffered designs.
    use pipelayer::area::{training_area, AreaModel};
    use pipelayer::config::PipeLayerConfig;
    use pipelayer::mapping::MappedNetwork;
    use pipelayer::perf::PerfModel;

    let net = MappedNetwork::from_spec(&zoo::alexnet(), PipeLayerConfig::default());
    let perf = PerfModel::new(&net);
    let gops = perf.training_gops(6400);
    let area = training_area(&net, &AreaModel::default()).mm2;
    let power = perf.training(6400, true).power_w();

    let compute_eff = gops / area;
    let power_eff = gops / power;
    assert!(
        compute_eff > ISAAC.gops_per_mm2,
        "compute efficiency {compute_eff}"
    );
    assert!(compute_eff > DADIANNAO.gops_per_mm2);
    assert!(
        power_eff < DADIANNAO.gops_per_w,
        "power efficiency {power_eff}"
    );
    assert!(power_eff < ISAAC.gops_per_w);
}

#[test]
fn pipeline_beats_nonpipelined_by_large_factor() {
    // Fig. 15: pipelined PipeLayer is roughly an order of magnitude above
    // the non-pipelined variant.
    for (spec, n) in workloads() {
        let pipe = Accelerator::builder(spec.clone()).batch_size(64).build();
        let nopipe = Accelerator::builder(spec.clone())
            .batch_size(64)
            .pipelined(false)
            .build();
        let ratio = nopipe.estimate_training(n).time_s / pipe.estimate_training(n).time_s;
        // The theoretical ceiling is (2L+1)B/(2L+B+1) (Fig. 7); require at
        // least 60% of it (the rest is the differently-timed update cycle).
        let limit = pipelayer::analysis::Analysis::new(spec.weighted_layers(), 64)
            .training_pipeline_speedup_limit();
        assert!(
            ratio > 0.6 * limit,
            "{}: pipeline ratio {ratio} below 60% of the {limit} ceiling",
            spec.name
        );
    }
}
