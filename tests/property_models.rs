//! Property-based tests over the architecture models: randomized network
//! shapes must preserve the invariants the paper's design rests on.

use pipelayer::analysis::Analysis;
use pipelayer::config::PipeLayerConfig;
use pipelayer::energy::EnergyModel;
use pipelayer::mapping::MappedNetwork;
use pipelayer::pipeline::PipelineSim;
use pipelayer::timing::TimingModel;
use pipelayer_nn::{LayerSpec, NetSpec};
use pipelayer_reram::{Crossbar, ReramMatrix, ReramParams, VariationModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// Deterministic pseudo-random float buffer in `[-1, 1)` (the stub
/// proptest has no `collection::vec` strategy, so vectors are derived
/// from a drawn seed instead).
fn rand_floats(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(-1.0f32..1.0)).collect()
}

/// A random small CNN spec: 1–3 conv blocks then 1–2 FC layers.
fn arb_spec() -> impl Strategy<Value = NetSpec> {
    (
        1usize..=3,                                      // conv blocks
        1usize..=2,                                      // fc layers
        prop::sample::select(vec![16usize, 20, 28, 32]), // input side
        1usize..=8,                                      // base channels
    )
        .prop_map(|(blocks, fcs, side, ch)| {
            let mut layers = Vec::new();
            let mut c = ch;
            for _ in 0..blocks {
                layers.push(LayerSpec::Conv {
                    k: 3,
                    c_out: c * 2,
                    stride: 1,
                    pad: 1,
                });
                layers.push(LayerSpec::Pool {
                    k: 2,
                    stride: 2,
                    kind: pipelayer_nn::spec::PoolKind::Max,
                });
                c *= 2;
            }
            for f in 0..fcs {
                layers.push(LayerSpec::Fc {
                    n_out: if f + 1 == fcs { 10 } else { 64 },
                });
            }
            NetSpec::new("prop", (1, side, side), layers)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// More replication never lengthens the cycle; less never shortens it.
    #[test]
    fn cycle_time_monotone_in_granularity(spec in arb_spec()) {
        let resolved = spec.resolve();
        let g1: Vec<usize> = vec![1; resolved.len()];
        let g2: Vec<usize> = resolved
            .iter()
            .map(|l| l.window_positions.max(1))
            .collect();
        let cfg = PipeLayerConfig::default();
        let m1 = MappedNetwork::with_granularity(&spec, &g1, cfg);
        let m2 = MappedNetwork::with_granularity(&spec, &g2, cfg);
        let c1 = TimingModel::new(&m1).cycle_testing_ns();
        let c2 = TimingModel::new(&m2).cycle_testing_ns();
        prop_assert!(c2 <= c1, "max replication must not be slower: {c2} vs {c1}");
    }

    /// Training is never cheaper than testing, in cycles, time or energy.
    #[test]
    fn training_dominates_testing(spec in arb_spec()) {
        let m = MappedNetwork::from_spec(&spec, PipeLayerConfig::with_batch(16));
        let e = EnergyModel::new(&m);
        prop_assert!(e.training_energy_j(64) >= e.testing_energy_j(64));
        let t = TimingModel::new(&m);
        prop_assert!(t.cycle_training_ns() >= t.cycle_testing_ns());
    }

    /// The simulator and the closed form agree for every random shape.
    #[test]
    fn simulator_agrees_with_formula(spec in arb_spec(), b in 1usize..32) {
        let l = spec.weighted_layers();
        let out = PipelineSim::new(l, b).simulate_training(1, 0, 0);
        prop_assert_eq!(out.cycles, Analysis::new(l, b).training_cycles_pipelined(b as u64));
        prop_assert_eq!(out.dependency_violations, 0);
    }

    /// Array counts are monotone: a deeper network never needs fewer
    /// crossbars than its prefix.
    #[test]
    fn crossbars_monotone_in_depth(spec in arb_spec()) {
        let cfg = PipeLayerConfig::default();
        let full = MappedNetwork::from_spec(&spec, cfg);
        // Drop the last weighted layer (keep at least one).
        let mut layers = spec.layers.clone();
        while let Some(last) = layers.last() {
            let weighted = !matches!(last, LayerSpec::Pool { .. });
            layers.pop();
            if weighted {
                break;
            }
        }
        if layers.iter().any(|l| !matches!(l, LayerSpec::Pool { .. })) {
            while matches!(layers.last(), Some(LayerSpec::Pool { .. })) {
                layers.pop();
            }
            let prefix_spec = NetSpec::new("prefix", spec.input, layers);
            let prefix = MappedNetwork::from_spec(&prefix_spec, cfg);
            prop_assert!(
                prefix.forward_crossbars() <= full.forward_crossbars(),
                "prefix needs more arrays than the full network"
            );
        }
    }

    /// Energy is exactly linear in the image count.
    #[test]
    fn energy_linear(spec in arb_spec(), k in 1u64..8) {
        let m = MappedNetwork::from_spec(&spec, PipeLayerConfig::with_batch(8));
        let e = EnergyModel::new(&m);
        let one = e.testing_energy_j(8);
        let many = e.testing_energy_j(8 * k);
        prop_assert!((many - one * k as f64).abs() < 1e-9 * many.abs().max(1.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `perturb_weights` is a pure function of (weights, seed): the same
    /// seed must reproduce the corruption exactly.
    #[test]
    fn perturb_weights_deterministic_in_seed(
        n in 1usize..80,
        wseed in 0u64..1000,
        sigma in 0.0f64..3.0,
        saz in 0.0f64..0.2,
        sam in 0.0f64..0.2,
        seed in 0u64..1000,
    ) {
        let w = rand_floats(n, wseed);
        let m = VariationModel { write_sigma: sigma, stuck_at_zero: saz, stuck_at_max: sam };
        prop_assert_eq!(
            m.perturb_weights(&w, 16, 4, seed),
            m.perturb_weights(&w, 16, 4, seed)
        );
    }

    /// σ = 0 with zero stuck-at rates is the identity on any buffer.
    #[test]
    fn perturb_weights_ideal_is_identity(n in 1usize..80, wseed in 0u64..1000, seed in 0u64..1000) {
        let w = rand_floats(n, wseed);
        prop_assert_eq!(VariationModel::ideal().perturb_weights(&w, 16, 4, seed), w);
    }

    /// Corrupted weights stay inside the representable fixed-point range:
    /// no perturbation can exceed the quantization grid's ±absmax span.
    #[test]
    fn perturb_weights_stay_representable(
        n in 1usize..80,
        wseed in 0u64..1000,
        sigma in 0.0f64..4.0,
        saz in 0.0f64..0.5,
        sam in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        let w = rand_floats(n, wseed);
        let absmax = w.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let m = VariationModel { write_sigma: sigma, stuck_at_zero: saz, stuck_at_max: sam };
        for v in m.perturb_weights(&w, 16, 4, seed) {
            prop_assert!(
                v.is_finite() && v.abs() <= absmax * (1.0 + 1e-6),
                "{v} escapes the representable range ±{absmax}"
            );
        }
    }

    /// The spiked crossbar MVM is *exact* on integer levels: it must equal
    /// a plain float dot product of the same levels and inputs.
    #[test]
    fn mvm_spiked_matches_float_mvm_exactly_on_levels(
        rows in 1usize..24,
        cols in 1usize..16,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let levels: Vec<Vec<u8>> =
            (0..rows).map(|_| (0..cols).map(|_| rng.random_range(0u32..16) as u8).collect()).collect();
        let input: Vec<u32> = (0..rows).map(|_| rng.random_range(0u32..65536)).collect();
        let mut xbar = Crossbar::new(rows, cols, 4);
        xbar.program(&levels);
        let got = xbar.mvm_spiked(&input, 16);
        for c in 0..cols {
            let want: f64 = (0..rows).map(|r| input[r] as f64 * levels[r][c] as f64).sum();
            prop_assert_eq!(got[c] as f64, want, "column {}", c);
        }
    }

    /// The full analog path (input quantization → spiked crossbar MVMs →
    /// shift-add) agrees with a float `W·x` within the quantization error
    /// bound implied by `data_bits`: per-term error ≤ half a weight LSB
    /// times |x| plus half an input LSB times |w| (plus the cross term).
    #[test]
    fn matvec_within_quantization_bound(
        out_dim in 1usize..12,
        in_dim in 1usize..24,
        seed in 0u64..1000,
    ) {
        let params = ReramParams::default();
        let w = rand_floats(out_dim * in_dim, seed);
        let x = rand_floats(in_dim, seed ^ 0xabcd);
        let mut m = ReramMatrix::program(&w, out_dim, in_dim, &params);
        let got = m.matvec(&x);

        let w_absmax = w.iter().fold(0.0f64, |a, &v| a.max(v.abs() as f64));
        let x_absmax = x.iter().fold(0.0f64, |a, &v| a.max(v.abs() as f64));
        let qmax = ((1i64 << (params.data_bits - 1)) - 1) as f64;
        let in_qmax = ((1u64 << params.data_bits) - 1) as f64 / 2.0;
        let w_scale = w_absmax / qmax;
        let x_scale = x_absmax / in_qmax;
        let bound = in_dim as f64
            * (0.5 * w_scale * x_absmax + 0.5 * x_scale * w_absmax + 0.25 * w_scale * x_scale);

        for (o, &g) in got.iter().enumerate() {
            let want: f64 = (0..in_dim)
                .map(|i| w[o * in_dim + i] as f64 * x[i] as f64)
                .sum();
            prop_assert!(
                (g as f64 - want).abs() <= bound * 1.01 + 1e-6,
                "out[{}] = {} vs float {} exceeds quantization bound {}",
                o, g, want, bound
            );
        }
    }
}
