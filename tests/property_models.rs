//! Property-based tests over the architecture models: randomized network
//! shapes must preserve the invariants the paper's design rests on.

use pipelayer::analysis::Analysis;
use pipelayer::config::PipeLayerConfig;
use pipelayer::energy::EnergyModel;
use pipelayer::mapping::MappedNetwork;
use pipelayer::pipeline::PipelineSim;
use pipelayer::timing::TimingModel;
use pipelayer_nn::{LayerSpec, NetSpec};
use proptest::prelude::*;

/// A random small CNN spec: 1–3 conv blocks then 1–2 FC layers.
fn arb_spec() -> impl Strategy<Value = NetSpec> {
    (
        1usize..=3,           // conv blocks
        1usize..=2,           // fc layers
        prop::sample::select(vec![16usize, 20, 28, 32]), // input side
        1usize..=8,           // base channels
    )
        .prop_map(|(blocks, fcs, side, ch)| {
            let mut layers = Vec::new();
            let mut c = ch;
            for _ in 0..blocks {
                layers.push(LayerSpec::Conv { k: 3, c_out: c * 2, stride: 1, pad: 1 });
                layers.push(LayerSpec::Pool {
                    k: 2,
                    stride: 2,
                    kind: pipelayer_nn::spec::PoolKind::Max,
                });
                c *= 2;
            }
            for f in 0..fcs {
                layers.push(LayerSpec::Fc {
                    n_out: if f + 1 == fcs { 10 } else { 64 },
                });
            }
            NetSpec::new("prop", (1, side, side), layers)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// More replication never lengthens the cycle; less never shortens it.
    #[test]
    fn cycle_time_monotone_in_granularity(spec in arb_spec()) {
        let resolved = spec.resolve();
        let g1: Vec<usize> = vec![1; resolved.len()];
        let g2: Vec<usize> = resolved
            .iter()
            .map(|l| l.window_positions.max(1))
            .collect();
        let cfg = PipeLayerConfig::default();
        let m1 = MappedNetwork::with_granularity(&spec, &g1, cfg);
        let m2 = MappedNetwork::with_granularity(&spec, &g2, cfg);
        let c1 = TimingModel::new(&m1).cycle_testing_ns();
        let c2 = TimingModel::new(&m2).cycle_testing_ns();
        prop_assert!(c2 <= c1, "max replication must not be slower: {c2} vs {c1}");
    }

    /// Training is never cheaper than testing, in cycles, time or energy.
    #[test]
    fn training_dominates_testing(spec in arb_spec()) {
        let m = MappedNetwork::from_spec(&spec, PipeLayerConfig::with_batch(16));
        let e = EnergyModel::new(&m);
        prop_assert!(e.training_energy_j(64) >= e.testing_energy_j(64));
        let t = TimingModel::new(&m);
        prop_assert!(t.cycle_training_ns() >= t.cycle_testing_ns());
    }

    /// The simulator and the closed form agree for every random shape.
    #[test]
    fn simulator_agrees_with_formula(spec in arb_spec(), b in 1usize..32) {
        let l = spec.weighted_layers();
        let out = PipelineSim::new(l, b).simulate_training(1, 0, 0);
        prop_assert_eq!(out.cycles, Analysis::new(l, b).training_cycles_pipelined(b as u64));
        prop_assert_eq!(out.dependency_violations, 0);
    }

    /// Array counts are monotone: a deeper network never needs fewer
    /// crossbars than its prefix.
    #[test]
    fn crossbars_monotone_in_depth(spec in arb_spec()) {
        let cfg = PipeLayerConfig::default();
        let full = MappedNetwork::from_spec(&spec, cfg);
        // Drop the last weighted layer (keep at least one).
        let mut layers = spec.layers.clone();
        while let Some(last) = layers.last() {
            let weighted = !matches!(last, LayerSpec::Pool { .. });
            layers.pop();
            if weighted {
                break;
            }
        }
        if layers.iter().any(|l| !matches!(l, LayerSpec::Pool { .. })) {
            while matches!(layers.last(), Some(LayerSpec::Pool { .. })) {
                layers.pop();
            }
            let prefix_spec = NetSpec::new("prefix", spec.input, layers);
            let prefix = MappedNetwork::from_spec(&prefix_spec, cfg);
            prop_assert!(
                prefix.forward_crossbars() <= full.forward_crossbars(),
                "prefix needs more arrays than the full network"
            );
        }
    }

    /// Energy is exactly linear in the image count.
    #[test]
    fn energy_linear(spec in arb_spec(), k in 1u64..8) {
        let m = MappedNetwork::from_spec(&spec, PipeLayerConfig::with_batch(8));
        let e = EnergyModel::new(&m);
        let one = e.testing_energy_j(8);
        let many = e.testing_energy_j(8 * k);
        prop_assert!((many - one * k as f64).abs() < 1e-9 * many.abs().max(1.0));
    }
}
