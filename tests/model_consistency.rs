//! Cross-crate consistency of the architecture models: the cycle-accurate
//! simulator, the closed-form analysis, the mapping and the figure-level
//! sweeps must all agree for every evaluation network.

use pipelayer::analysis::Analysis;
use pipelayer::config::PipeLayerConfig;
use pipelayer::granularity::{default_granularity, scale_lambda};
use pipelayer::mapping::MappedNetwork;
use pipelayer::perf::PerfModel;
use pipelayer::pipeline::PipelineSim;
use pipelayer::Accelerator;
use pipelayer_nn::zoo;

#[test]
fn simulator_matches_formula_for_every_evaluation_network() {
    for spec in zoo::evaluation_specs() {
        let l = spec.weighted_layers();
        let b = 64usize;
        let sim = PipelineSim::new(l, b).simulate_training(1, 0, 0);
        let formula = Analysis::new(l, b).training_cycles_pipelined(b as u64);
        assert_eq!(sim.cycles, formula, "{}", spec.name);
        assert_eq!(sim.dependency_violations, 0, "{}", spec.name);
        assert_eq!(sim.peak_parallel_stages, 2 * l + 1, "{}", spec.name);
    }
}

#[test]
fn estimates_scale_linearly_in_workload() {
    let accel = Accelerator::builder(zoo::vgg(zoo::VggVariant::C))
        .batch_size(64)
        .build();
    let t1 = accel.estimate_training(640);
    let t2 = accel.estimate_training(1280);
    assert!((t2.time_s / t1.time_s - 2.0).abs() < 0.01);
    assert!((t2.energy_j / t1.energy_j - 2.0).abs() < 1e-9);
}

#[test]
fn larger_lambda_never_slows_any_vgg() {
    for variant in zoo::VggVariant::ALL {
        let spec = zoo::vgg(variant);
        let mut last = f64::INFINITY;
        for lambda in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let accel = Accelerator::builder(spec.clone())
                .batch_size(64)
                .lambda(lambda)
                .build();
            let t = accel.estimate_training(640).time_s;
            assert!(
                t <= last * 1.0001,
                "{} slowed down at lambda={lambda}: {t} > {last}",
                spec.name
            );
            last = t;
        }
    }
}

#[test]
fn lambda_area_and_speed_tradeoff_is_monotone() {
    let spec = zoo::vgg(zoo::VggVariant::B);
    let layers = spec.resolve();
    let g = default_granularity(&layers);
    let mut last_area = 0.0;
    for lambda in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let gl = scale_lambda(&g, lambda, &layers);
        let net = MappedNetwork::with_granularity(&spec, &gl, PipeLayerConfig::default());
        let area = net.total_crossbars_training();
        assert!(area as f64 >= last_area, "area must not shrink with lambda");
        last_area = area as f64;
    }
}

#[test]
fn batch_size_amortises_fill_overhead() {
    let spec = zoo::vgg(zoo::VggVariant::A);
    let mut last = f64::INFINITY;
    for batch in [8usize, 32, 128, 512] {
        let accel = Accelerator::builder(spec.clone()).batch_size(batch).build();
        let per_image = accel.estimate_training(4096).time_s / 4096.0;
        assert!(
            per_image < last,
            "larger batch should amortise the 2L+1 fill: {per_image} !< {last}"
        );
        last = per_image;
    }
}

#[test]
fn nonpipelined_time_uses_same_cycle_length() {
    let net = MappedNetwork::from_spec(&zoo::spec_mnist_0(), PipeLayerConfig::default());
    let perf = PerfModel::new(&net);
    let pipe = perf.training(640, true);
    let seq = perf.training(640, false);
    assert_eq!(pipe.cycle_ns, seq.cycle_ns, "both share the hardware cycle");
    assert!(seq.cycles > pipe.cycles);
}

#[test]
fn testing_deployment_never_larger_than_training() {
    for spec in zoo::evaluation_specs() {
        let accel = Accelerator::builder(spec.clone()).batch_size(64).build();
        assert!(
            accel.testing_area_mm2() < accel.training_area_mm2(),
            "{}",
            spec.name
        );
    }
}
