//! End-to-end fidelity: the same learning task solved by (a) the float
//! training framework and (b) the functional ReRAM datapath, and the parity
//! between the two.

use pipelayer::functional::{downsample, ReramMlp};
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::layers::{Linear, Relu};
use pipelayer_nn::{Loss, Network};
use pipelayer_reram::ReramParams;
use pipelayer_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_task(seed: u64) -> (Vec<Tensor>, Vec<usize>, Vec<Tensor>, Vec<usize>) {
    let data = SyntheticMnist::generate(200, 80, seed);
    let ds = |v: &[Tensor]| -> Vec<Tensor> { v.iter().map(|t| downsample(t, 4)).collect() };
    (
        ds(&data.train.images),
        data.train.labels.clone(),
        ds(&data.test.images),
        data.test.labels.clone(),
    )
}

#[test]
fn reram_training_tracks_float_training() {
    let (tr, trl, te, tel) = small_task(404);

    // Float reference.
    let mut rng = StdRng::seed_from_u64(5);
    let mut float_net = Network::new("float", Loss::SoftmaxCrossEntropy);
    float_net.push(Linear::new(49, 20, &mut rng));
    float_net.push(Relu::new());
    float_net.push(Linear::new(20, 10, &mut rng));

    // ReRAM datapath (independent init; we compare task outcomes).
    let mut reram = ReramMlp::new(&[49, 20, 10], &ReramParams::default(), 5);

    for _ in 0..4 {
        for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)) {
            float_net.train_batch(imgs, labs, 0.25);
            reram.train_batch(imgs, labs, 0.25);
        }
    }

    let float_acc = float_net.accuracy(&te, &tel);
    let reram_acc = reram.accuracy(&te, &tel);
    assert!(
        float_acc > 0.55,
        "float reference failed to learn: {float_acc}"
    );
    assert!(
        reram_acc > 0.5,
        "ReRAM datapath failed to learn: {reram_acc}"
    );
    assert!(
        (float_acc - reram_acc).abs() < 0.25,
        "fixed-point training should track float: {float_acc} vs {reram_acc}"
    );
}

#[test]
fn reram_forward_agrees_with_float_network_carrying_same_weights() {
    // Read the (quantized) weights back from the crossbars (the Fig. 14b
    // read-out path), mirror them into a float network, and require
    // matching predictions.
    let mut reram = ReramMlp::new(&[16, 12, 4], &ReramParams::default(), 11);

    let mut rng = StdRng::seed_from_u64(0);
    let mut float_net = Network::new("mirror", Loss::SoftmaxCrossEntropy);
    float_net.push(Linear::new(16, 12, &mut rng));
    float_net.push(Relu::new());
    float_net.push(Linear::new(12, 4, &mut rng));

    let mut li = 0usize;
    for layer in float_net.layers_mut() {
        if let Some(p) = layer.params_mut() {
            let (n_in, n_out) = reram.layer_dims(li);
            let w = reram.layer_weights(li); // [out x (in+1)], bias last
            assert_eq!(p.weight.dims(), [n_out, n_in]);
            for o in 0..n_out {
                for i in 0..n_in {
                    p.weight.as_mut_slice()[o * n_in + i] = w[o * (n_in + 1) + i];
                }
                p.bias.as_mut_slice()[o] = w[o * (n_in + 1) + n_in];
            }
            li += 1;
        }
    }

    let mut agree = 0;
    let total = 50;
    for k in 0..total {
        let x: Vec<f32> = (0..16).map(|i| ((i + k) as f32 * 0.37).sin()).collect();
        let xt = Tensor::from_vec(&[16], x.clone());
        if reram.predict(&x) == float_net.predict(&xt) {
            agree += 1;
        }
    }
    assert!(
        agree * 10 >= total * 9,
        "crossbar and float predictions should agree: {agree}/{total}"
    );
}

#[test]
fn weight_updates_are_visible_in_array_readback() {
    // Train one batch and confirm the arrays physically changed (Fig. 14b
    // write-back), while an untouched layer's readback stays stable under
    // repeated reads.
    let (tr, trl, _, _) = small_task(42);
    let mut mlp = ReramMlp::new(&[49, 8, 10], &ReramParams::default(), 21);
    let before = mlp.layer_weights(0);
    let again = mlp.layer_weights(0);
    assert_eq!(before, again, "read-out must be non-destructive");

    mlp.train_batch(&tr[..10], &trl[..10], 0.5);
    let after = mlp.layer_weights(0);
    let moved = before
        .iter()
        .zip(&after)
        .filter(|(a, b)| (*a - *b).abs() > 1e-6)
        .count();
    assert!(moved > 0, "training must reprogram cells");
}
