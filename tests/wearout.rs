//! Wear-out lifecycle integration tests: the exact no-op gate, graceful
//! storage-class degradation through the repair ladder, and bitwise
//! checkpoint/resume of a wearing device killed at arbitrary image
//! counts and restored at different thread counts.

use pipelayer::functional::{downsample, ReramMlp};
use pipelayer::{RepairPolicy, SpareBudget};
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::metrics::DegradationReport;
use pipelayer_nn::serialize::{load_sections, save_sections};
use pipelayer_reram::{FaultModel, ReramParams, VerifyPolicy, WearModel};
use pipelayer_tensor::Tensor;

const DIMS: [usize; 3] = [49, 16, 10];
const SEED: u64 = 5;
const LR: f32 = 0.3;

fn small_task() -> (Vec<Tensor>, Vec<usize>, Vec<Tensor>, Vec<usize>) {
    let data = SyntheticMnist::generate(120, 40, 77);
    let tr: Vec<Tensor> = data.train.images.iter().map(|t| downsample(t, 4)).collect();
    let te: Vec<Tensor> = data.test.images.iter().map(|t| downsample(t, 4)).collect();
    (tr, data.train.labels, te, data.test.labels)
}

/// The campaign configuration: storage-class endurance with a tight
/// production spread, verified writes, 8 spare columns per matrix and
/// the full escalation ladder.
fn storage_mlp() -> ReramMlp {
    let mut m = ReramMlp::with_fault_tolerance(
        &DIMS,
        &ReramParams::default(),
        SEED,
        &FaultModel::ideal(),
        VerifyPolicy::with_attempts(2),
        SpareBudget::with_cols(8),
    );
    m.attach_wear(
        WearModel {
            median_writes: 200.0,
            sigma: 0.2,
        },
        SEED,
    );
    m.set_repair_policy(RepairPolicy::laddered());
    m
}

/// All stored weights of every layer, as bits, for exact comparison.
fn weight_bits(mlp: &ReramMlp) -> Vec<u32> {
    (0..mlp.depth())
        .flat_map(|li| mlp.layer_weights(li))
        .map(|v| v.to_bits())
        .collect()
}

/// Attaching the ideal wear model must leave the whole training
/// trajectory bit-identical to never attaching wear — the no-op gate the
/// calibrated paper-figure pins rely on.
#[test]
fn ideal_wear_is_bitwise_noop_end_to_end() {
    let (tr, trl, te, tel) = small_task();
    let mut plain = ReramMlp::new(&DIMS, &ReramParams::default(), SEED);
    let mut gated = ReramMlp::new(&DIMS, &ReramParams::default(), SEED);
    gated.attach_wear(WearModel::ideal(), SEED);
    for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)).take(6) {
        let lp = plain.train_batch(imgs, labs, LR);
        let lg = gated.train_batch(imgs, labs, LR);
        assert_eq!(lp.to_bits(), lg.to_bits(), "loss bits diverged");
    }
    assert_eq!(weight_bits(&plain), weight_bits(&gated));
    assert_eq!(gated.wear_exhausted_cells(), 0);
    let (ap, ag) = (plain.accuracy(&te, &tel), gated.accuracy(&te, &tel));
    assert_eq!(ap.to_bits(), ag.to_bits(), "accuracy bits diverged");
}

/// A full storage-class run: cells must die mid-run, the ladder must
/// spend spares on them, and the run must end degraded-but-functional —
/// never panicking, never collapsing to chance.
#[test]
fn storage_class_wear_degrades_gracefully() {
    let (tr, trl, te, tel) = small_task();
    let mut baseline = ReramMlp::new(&DIMS, &ReramParams::default(), SEED);
    let mut worn = storage_mlp();
    for _ in 0..8 {
        for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)) {
            baseline.train_batch(imgs, labs, LR);
            worn.train_batch(imgs, labs, LR);
        }
    }
    assert!(worn.wear_exhausted_cells() > 0, "cells must wear out");
    assert!(worn.spares_used() > 0, "the ladder must spend spares");
    let report = DegradationReport::new(baseline.accuracy(&te, &tel), worn.accuracy(&te, &tel))
        .with_repair_state(worn.spares_left(), worn.masked_units());
    assert!(
        report.degraded > 0.3,
        "graceful degradation must not collapse to chance: {}",
        report.degraded
    );
    assert!(
        report.within(25.0),
        "storage-class drop should stay bounded: {} points",
        report.drop_points()
    );
}

/// Kill a wearing run at an awkward image count, round-trip the device
/// snapshot through a PLW2 WEAR section, restore into a freshly built
/// device, and finish at a different thread count: weights, wear
/// counters, fault maps and repair state must all be bitwise identical
/// to the never-interrupted run, at every thread count.
#[test]
fn kill_resume_under_wear_is_bitwise_at_any_thread_count() {
    let (tr, trl, _, _) = small_task();
    let batches: Vec<(&[Tensor], &[usize])> = tr.chunks(10).zip(trl.chunks(10)).take(8).collect();

    // The uninterrupted reference, single-threaded.
    let mut reference = storage_mlp();
    for (imgs, labs) in &batches {
        reference.train_batch_parallel(imgs, labs, LR, 1);
    }
    let ref_bits = weight_bits(&reference);

    // Kill after 3 batches (30 images) and after 5 more; each hop crosses
    // a save → WEAR section → load → restore boundary into a fresh device
    // and a different thread count.
    for threads in [1usize, 2, 8] {
        let mut live = storage_mlp();
        for (imgs, labs) in batches.iter().take(3) {
            live.train_batch_parallel(imgs, labs, LR, threads);
        }
        let blob = save_sections(&[(*b"WEAR", live.device_state())]);
        drop(live);

        let sections = load_sections(&blob).expect("WEAR checkpoint must decode");
        assert_eq!(sections.len(), 1);
        assert_eq!(&sections[0].0, b"WEAR");
        let mut resumed = storage_mlp();
        assert!(
            resumed.restore_device_state(&sections[0].1),
            "restore must accept the snapshot"
        );
        for (imgs, labs) in batches.iter().skip(3) {
            resumed.train_batch_parallel(imgs, labs, LR, threads);
        }
        assert_eq!(
            weight_bits(&resumed),
            ref_bits,
            "{threads}-thread resume diverged from the uninterrupted run"
        );
        assert_eq!(
            resumed.wear_exhausted_cells(),
            reference.wear_exhausted_cells()
        );
        assert_eq!(resumed.spares_used(), reference.spares_used());
        assert_eq!(resumed.spares_left(), reference.spares_left());
        assert_eq!(resumed.masked_units(), reference.masked_units());
        assert_eq!(resumed.write_spikes(), reference.write_spikes());
    }
}

/// A wear snapshot must be rejected by a device of a different shape —
/// resuming a checkpoint onto the wrong network must fail loudly, not
/// corrupt silently.
#[test]
fn wear_snapshot_rejects_wrong_shape() {
    let (tr, trl, _, _) = small_task();
    let mut live = storage_mlp();
    for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)).take(2) {
        live.train_batch(imgs, labs, LR);
    }
    let blob = live.device_state();
    let mut other = ReramMlp::new(&[49, 8, 10], &ReramParams::default(), SEED);
    assert!(
        !other.restore_device_state(&blob),
        "a differently-shaped device must reject the snapshot"
    );
    let mut truncated = storage_mlp();
    assert!(!truncated.restore_device_state(&blob[..blob.len() / 2]));
}
