#!/usr/bin/env bash
# Regenerates every paper table/figure and ablation into results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
BINS=(fig6_schedule fig7_latency fig13_resolution fig15_speedup fig16_energy \
      fig17_lambda_speedup fig18_lambda_area table1_operations table2_cycles \
      table3_networks table5_granularity sec66_efficiency \
      ablation_variation ablation_training_resolution ablation_batch ablation_adc)
for b in "${BINS[@]}"; do
    echo "== $b =="
    cargo run --release -q -p pipelayer-bench --bin "$b" -- ${QUICK:+--quick} \
        | tee "results/$b.txt"
    echo
done
echo "outputs written to results/"
