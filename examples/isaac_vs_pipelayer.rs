//! PipeLayer vs an ISAAC-style deep pipeline on *training* workloads —
//! the architectural argument of Sec. 3.2.2: a very deep intra-layer
//! pipeline amortises its fill only over long uninterrupted input runs,
//! and training truncates every run at the batch boundary.
//!
//! The two simulators model different abstraction levels (tile stages vs
//! whole-layer cycles), so the honest comparison is each design's *pipeline
//! utilization* — sustained training throughput relative to its own
//! steady-state inference throughput.
//!
//! ```sh
//! cargo run --release --example isaac_vs_pipelayer
//! ```

use pipelayer::analysis::Analysis;
use pipelayer_baselines::IsaacModel;
use pipelayer_nn::zoo::{vgg, VggVariant};

fn main() {
    let spec = vgg(VggVariant::D);
    let isaac = IsaacModel::default();
    let l = spec.weighted_layers();
    let n = 6400u64;

    println!("workload: {} (L = {l}) | {n} training images", spec.name);
    println!();
    println!("pipeline utilization while training (sustained / steady-state inference rate):");
    println!(
        "{:>8} {:>22} {:>22} {:>24}",
        "batch", "ISAAC-style (%)", "PipeLayer (%)", "ISAAC drain share (%)"
    );
    for batch in [8usize, 16, 32, 64, 128, 256] {
        // ISAAC: per-image training cost vs 2 traversals at the initiation
        // interval (training doubles the per-image work).
        let ideal = 2.0 * n as f64 * isaac.initiation_interval_ns() * 1e-9;
        let actual = isaac.training_time_s(&spec, n, batch);
        let isaac_util = 100.0 * ideal / actual;

        // PipeLayer: B images retire per (2L+B+1)-cycle batch; inference
        // retires one per cycle.
        let a = Analysis::new(l, batch);
        let pl_util = 100.0 * batch as f64 / a.training_cycles_pipelined(batch as u64) as f64;

        let drain = 100.0 * isaac.training_drain_fraction(&spec, batch);
        println!("{batch:>8} {isaac_util:>22.1} {pl_util:>22.1} {drain:>24.1}");
    }

    println!();
    println!("shape (Sec. 3.2.2): the deep pipeline's fill/drain swallows most of each");
    println!(
        "small batch — at B = 64 it idles ~{:.0}% of the time — while PipeLayer's",
        100.0 * isaac.training_drain_fraction(&spec, 64)
    );
    println!("layer-granular pipeline keeps one image entering per cycle; its only");
    println!(
        "per-batch overhead is the fixed 2L+1 = {} cycle fill plus one update cycle.",
        2 * l + 1
    );
}
