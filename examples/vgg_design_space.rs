//! Design-space exploration: sweep the parallelism granularity λ for one
//! VGG network and print the speed/area trade-off curve (the combined
//! content of Figs. 17 and 18), then pick the knee.
//!
//! ```sh
//! cargo run --release --example vgg_design_space [A|B|C|D|E]
//! ```

use pipelayer::Accelerator;
use pipelayer_baselines::GpuModel;
use pipelayer_nn::zoo::{vgg, VggVariant};

fn main() {
    let variant = match std::env::args().nth(1).as_deref() {
        Some("A") | None => VggVariant::A,
        Some("B") => VggVariant::B,
        Some("C") => VggVariant::C,
        Some("D") => VggVariant::D,
        Some("E") => VggVariant::E,
        Some(other) => {
            eprintln!("unknown VGG variant `{other}`, expected A..E");
            std::process::exit(2);
        }
    };
    let spec = vgg(variant);
    let gpu_train = GpuModel::default().training(&spec, 640, 64).time_s;

    println!(
        "design space for {} (training, 640 images, B = 64):",
        spec.name
    );
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>16}",
        "lambda", "speedup", "area mm^2", "crossbars", "speedup/area"
    );

    let mut best = (0.0f64, f64::NEG_INFINITY);
    for lambda in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let accel = Accelerator::builder(spec.clone())
            .batch_size(64)
            .lambda(lambda)
            .build();
        let speedup = gpu_train / accel.estimate_training(640).time_s;
        let area = accel.training_area_mm2();
        let merit = speedup / area;
        if merit > best.1 {
            best = (lambda, merit);
        }
        println!(
            "{lambda:>8} {speedup:>12.2} {area:>12.1} {:>14} {merit:>16.4}",
            accel.mapped().total_crossbars_training()
        );
    }
    println!(
        "\nknee of the curve (max speedup per mm^2): lambda = {} — the kind of balance Table 5's defaults encode.",
        best.0
    );
}
