//! Train a small *convolutional* network entirely on the modelled ReRAM
//! crossbars: the conv layer runs as the Fig. 4 window loop against arrays
//! holding the kernel matrix, the error backward convolution runs against
//! arrays programmed with the rot180-reordered kernels (Fig. 11), and
//! weight updates are in-array read-modify-writes (Fig. 14b).
//!
//! Then corrupt the trained weights with device variation (write noise and
//! dead cells) to see the error tolerance PipeLayer's 4-bit cells rely on
//! (Sec. 5.1).
//!
//! ```sh
//! cargo run --release --example cnn_on_reram
//! ```

use pipelayer::functional::{downsample, ReramCnn};
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::{LayerSpec, NetSpec};
use pipelayer_reram::ReramParams;
use pipelayer_tensor::Tensor;

fn main() {
    let data = SyntheticMnist::generate(200, 80, 777);
    let ds = |v: &[Tensor]| -> Vec<Tensor> { v.iter().map(|t| downsample(t, 4)).collect() };
    let train = ds(&data.train.images);
    let test = ds(&data.test.images);

    // A miniature M-C: conv3x4 -> fc10 over the 7x7 downsampled task.
    let spec = NetSpec::new(
        "mini-MC",
        (1, 7, 7),
        vec![
            LayerSpec::Conv {
                k: 3,
                c_out: 4,
                stride: 1,
                pad: 0,
            },
            LayerSpec::Fc { n_out: 10 },
        ],
    );
    let mut cnn = ReramCnn::from_spec(&spec, &ReramParams::default(), 99);

    println!(
        "training {} on ReRAM crossbars (every MVM spike-simulated)...",
        spec.name
    );
    let before = cnn.accuracy(&test, &data.test.labels);
    for epoch in 1..=3 {
        let mut loss = 0.0;
        let mut batches = 0;
        for (imgs, labs) in train.chunks(10).zip(data.train.labels.chunks(10)) {
            loss += cnn.train_batch(imgs, labs, 0.2);
            batches += 1;
        }
        println!("  epoch {epoch}: mean loss {:.4}", loss / batches as f32);
    }
    let after = cnn.accuracy(&test, &data.test.labels);
    println!(
        "test accuracy: {:.1}% -> {:.1}%",
        before * 100.0,
        after * 100.0
    );
    println!(
        "array activity: {} read spikes, {} programming pulses",
        cnn.read_spikes(),
        cnn.write_spikes()
    );
    assert!(after > before, "training should improve accuracy");
}
