//! Train a multilayer perceptron *on the modelled ReRAM crossbars*: every
//! matrix–vector product — forward and backward — runs through spike-coded
//! 4-bit arrays with resolution compensation, and every weight update is an
//! in-array read-modify-write (Fig. 14b).
//!
//! The host flow mirrors the paper's API (Sec. 5.2): `Copy_to_PL` →
//! `Weight_load` → `Train` → `Test` → `Copy_to_CPU`.
//!
//! ```sh
//! cargo run --release --example train_mnist_reram
//! ```

use pipelayer::functional::downsample;
use pipelayer::Accelerator;
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::{LayerSpec, NetSpec};
use pipelayer_tensor::Tensor;

fn main() {
    // The synthetic MNIST task, downsampled 28x28 -> 7x7 so the functional
    // (circuit-level) simulation stays snappy.
    let data = SyntheticMnist::generate(300, 100, 2024);
    let ds = |imgs: &[Tensor]| -> Vec<Tensor> { imgs.iter().map(|t| downsample(t, 4)).collect() };
    let train_images = ds(&data.train.images);
    let test_images = ds(&data.test.images);

    // An MLP topology in the spirit of Table 3's Mnist-A.
    let spec = NetSpec::new(
        "Mnist-A-7x7",
        (1, 7, 7),
        vec![LayerSpec::Fc { n_out: 24 }, LayerSpec::Fc { n_out: 10 }],
    );
    let mut accel = Accelerator::builder(spec).batch_size(10).build();

    // Host API flow (Sec. 5.2).
    accel.copy_to_pl(train_images, data.train.labels.clone());
    accel.weight_load(7).expect("MLP topology");

    println!("training on ReRAM crossbars (16-bit spikes, 4-bit cells)...");
    for epoch in 1..=4 {
        let loss = accel.train(1, 0.25).expect("staged data present");
        println!("  epoch {epoch}: mean batch loss {loss:.4}");
    }

    // Evaluate on the held-out split.
    accel.copy_to_pl(test_images, data.test.labels.clone());
    let predictions = accel.test().expect("test");
    let labels = accel.copy_to_cpu();
    let correct = predictions
        .iter()
        .zip(&labels)
        .filter(|(p, l)| p == l)
        .count();
    println!(
        "\ntest accuracy through the analog datapath: {}/{} = {:.1}%",
        correct,
        labels.len(),
        100.0 * correct as f64 / labels.len() as f64
    );
    assert!(
        correct * 2 > labels.len(),
        "training on ReRAM should beat chance comfortably"
    );
}
