//! Quickstart: configure PipeLayer for a network, inspect the mapping, and
//! get end-to-end training/testing estimates.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pipelayer::Accelerator;
use pipelayer_nn::zoo;

fn main() {
    // 1. Pick a network from the paper's evaluation zoo.
    let spec = zoo::alexnet();
    println!(
        "network: {} ({} weighted layers, {:.1}M weights)",
        spec.name,
        spec.weighted_layers(),
        spec.weight_count() as f64 / 1e6
    );

    // 2. Configure the accelerator (Sec. 5.2's Topology_set/Pipeline_set):
    //    batch size 64, default (Table 5 style) granularity, pipelined.
    let accel = Accelerator::builder(spec).batch_size(64).build();

    // 3. Inspect the mapping: arrays, granularity, per-layer reads.
    println!("\nmapping (kernel matrices onto 128x128 crossbars):");
    for layer in &accel.mapped().layers {
        println!(
            "  {:>12}: matrix {}x{}, {} tiles, G={}, {} reads/cycle",
            layer.resolved.name,
            layer.resolved.matrix_rows,
            layer.resolved.matrix_cols,
            layer.tiles,
            layer.g,
            layer.reads_forward
        );
    }
    println!(
        "crossbars: {} forward / {} total (training); area {:.1} mm^2",
        accel.mapped().forward_crossbars(),
        accel.mapped().total_crossbars_training(),
        accel.training_area_mm2()
    );

    // 4. Estimate a training epoch and an inference sweep.
    let train = accel.estimate_training(6400);
    let test = accel.estimate_testing(6400);
    println!(
        "\ntraining 6400 images: {} cycles of {:.2} us -> {:.1} ms, {:.2} J, {:.0} img/s",
        train.cycles,
        train.cycle_ns / 1e3,
        train.time_s * 1e3,
        train.energy_j,
        train.throughput()
    );
    println!(
        "testing  6400 images: {} cycles of {:.2} us -> {:.1} ms, {:.2} J, {:.0} img/s",
        test.cycles,
        test.cycle_ns / 1e3,
        test.time_s * 1e3,
        test.energy_j,
        test.throughput()
    );
}
