//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `bench_function`, benchmark groups with `bench_with_input`, `BenchmarkId`
//! and the `criterion_group!`/`criterion_main!` macros — as a simple
//! wall-clock timer: each benchmark runs a short warm-up, then a fixed
//! number of timed iterations, and prints mean time per iteration. No
//! statistics, plots or comparison baselines.

use std::time::{Duration, Instant};

/// Label for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered from one parameter value.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: p.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, p: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), p),
        }
    }
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    /// Measured mean time per iteration, filled by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `f`: short warm-up, then a fixed batch of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and a measure of how many iterations fit the budget.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(300) {
            std::hint::black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_nanos() / warmup_iters.max(1) as u128;
        // Aim for ~1s of measurement, capped to keep huge benches bounded.
        let iters = ((1_000_000_000 / per_iter.max(1)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed_per_iter = start.elapsed() / iters as u32;
    }
}

/// Entry point mirroring criterion's driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs an unparameterised benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, &mut f);
        self
    }

    /// Finishes the group (no-op; parity with criterion).
    pub fn finish(self) {}
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_per_iter: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.elapsed_per_iter.as_nanos();
    let pretty = if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    };
    println!("{label:<48} time: {pretty}/iter");
}

/// Re-export for code that imports `criterion::black_box`.
pub use std::hint::black_box;

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
    }

    #[test]
    fn group_runs_with_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }
}
