//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this local crate
//! provides the (small) slice of the `rand` API the workspace actually
//! uses: [`Rng`]/[`RngExt`], [`SeedableRng`], [`rngs::StdRng`],
//! [`seq::SliceRandom`] and [`distr::Uniform`]. The generator is a
//! deterministic SplitMix64 — statistically fine for simulation seeds and
//! reproducible across platforms, which is all the reproduction needs.

/// A source of random 64-bit words.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`RngExt::random`].
pub trait StandardSample: Sized {
    /// Maps one raw 64-bit word to a value.
    fn from_raw(raw: u64) -> Self;
}

impl StandardSample for f64 {
    fn from_raw(raw: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn from_raw(raw: u64) -> Self {
        (raw >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn from_raw(raw: u64) -> Self {
        raw
    }
}

impl StandardSample for u32 {
    fn from_raw(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl StandardSample for bool {
    fn from_raw(raw: u64) -> Self {
        raw & 1 == 1
    }
}

/// Numeric types samplable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_uniform(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "empty sample range");
                let unit = (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_uniform(self.start, self.end, rng)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly random value of `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::from_raw(self.next_u64())
    }

    /// A uniformly random value from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample_from(&mut draw)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Slice utilities.

    use super::{Rng, RngExt as _};

    /// In-place shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod distr {
    //! Distributions.

    use super::{Rng, SampleUniform};

    /// Sampling a value of `T` from a distribution.
    pub trait Distribution<T> {
        /// One draw.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a distribution.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct UniformError;

    impl core::fmt::Display for UniformError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "invalid uniform range")
        }
    }

    impl std::error::Error for UniformError {}

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Builds the distribution; errors if `lo >= hi`.
        pub fn new(lo: T, hi: T) -> Result<Self, UniformError> {
            if lo < hi {
                Ok(Uniform { lo, hi })
            } else {
                Err(UniformError)
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            let mut draw = || rng.next_u64();
            T::sample_uniform(self.lo, self.hi, &mut draw)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom as _;
    use super::{RngExt as _, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.random::<u64>()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.random::<u64>()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.random::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.random_range(-3i32..=3);
            assert!((-3..=3).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..2000).map(|_| rng.random::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
