//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the subset of proptest the workspace uses: range/tuple/`select` strategies
//! with `prop_map`, the [`proptest!`] macro (fixed-seed random sampling, no
//! shrinking), and the `prop_assert!`/`prop_assert_eq!` assertion macros.
//! Cases are sampled deterministically from a per-test seed, so failures
//! reproduce exactly even without shrinking.

use rand::rngs::StdRng;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{RngExt as _, SampleUniform};

    /// Generates values of [`Strategy::Value`] from a seeded generator.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl<T: SampleUniform> Strategy for core::ops::Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.start..self.end)
        }
    }

    macro_rules! impl_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A fixed value used as a strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod sample {
    //! Strategies drawing from explicit value sets.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt as _;

    /// Uniform choice from a non-empty vector.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Builds a [`Select`] strategy over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

pub mod test_runner {
    //! Configuration and failure reporting.

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` sampled cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Runs `cases` sampled executions of `body`, panicking on the first
/// failure with the case number and seed. Used by the [`proptest!`] macro.
pub fn run_cases(
    test_name: &str,
    config: test_runner::ProptestConfig,
    mut body: impl FnMut(&mut StdRng) -> Result<(), test_runner::TestCaseError>,
) {
    use rand::SeedableRng;
    // Stable per-test seed: FNV-1a over the test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(case as u64));
        if let Err(e) = body(&mut rng) {
            panic!("proptest '{test_name}' failed at case {case} (seed {seed:#x}): {e}");
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); ) => {};
    (@cfg ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), $cfg, |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_impl! { @cfg ($cfg); $($rest)* }
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    pub mod prop {
        //! Namespaced strategy modules (`prop::sample::select`).
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 1usize..9, b in -4i32..4, x in 0.0f64..1.0) {
            prop_assert!((1..9).contains(&a));
            prop_assert!((-4..4).contains(&b));
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn select_and_map_compose(
            v in prop::sample::select(vec![2usize, 4, 8]).prop_map(|x| x * 10)
        ) {
            prop_assert!(v == 20 || v == 40 || v == 80, "got {v}");
            prop_assert_eq!(v % 10, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::run_cases("always_fails", ProptestConfig::with_cases(3), |_rng| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }
}
